#include "sparql/evaluator.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <regex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace kgqan::sparql {

namespace {

using rdf::kNullTermId;
using rdf::Term;
using rdf::TermId;
using util::Status;
using util::StatusOr;

// A solution row: slot -> term id (kNullTermId = unbound).
using Binding = std::vector<TermId>;

// Maps variable names to dense slots across the whole query.
class SlotMap {
 public:
  size_t SlotOf(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    size_t slot = slots_.size();
    slots_.emplace(name, slot);
    return slot;
  }
  std::optional<size_t> Find(const std::string& name) const {
    auto it = slots_.find(name);
    if (it == slots_.end()) return std::nullopt;
    return it->second;
  }
  size_t size() const { return slots_.size(); }

 private:
  std::unordered_map<std::string, size_t> slots_;
};

void CollectVars(const GroupGraphPattern& group, SlotMap* slots) {
  auto visit = [&](const TermOrVar& tv) {
    if (IsVar(tv)) slots->SlotOf(AsVar(tv).name);
  };
  for (const TriplePattern& tp : group.triples) {
    visit(tp.s);
    visit(tp.p);
    visit(tp.o);
  }
  for (const TextPattern& tp : group.text_patterns) {
    slots->SlotOf(tp.var.name);
  }
  for (const InlineValues& iv : group.values) {
    slots->SlotOf(iv.var.name);
  }
  for (const GroupGraphPattern& opt : group.optionals) {
    CollectVars(opt, slots);
  }
  for (const auto& branches : group.unions) {
    for (const GroupGraphPattern& branch : branches) {
      CollectVars(branch, slots);
    }
  }
}

// A triple pattern compiled to slots: component is either a constant term
// id, or (slot | kVarFlag).
struct CompiledPattern {
  static constexpr uint64_t kVarFlag = 1ULL << 40;
  uint64_t s, p, o;
  bool dead = false;  // Constant term not present in this KG: no matches.

  static bool IsSlot(uint64_t c) { return (c & kVarFlag) != 0; }
  static size_t Slot(uint64_t c) { return static_cast<size_t>(c & ~kVarFlag); }
};

class Evaluator {
 public:
  Evaluator(const store::TripleStore& store, const text::TextIndex& text_index,
            const EvalOptions& options)
      : store_(store), text_index_(text_index), options_(options) {}

  StatusOr<ResultSet> Run(const Query& query) {
    CollectVars(query.where, &slots_);
    // Register aggregate / projection vars so projection can resolve them.
    for (const Var& v : query.select_vars) slots_.SlotOf(v.name);
    for (const CountAggregate& agg : query.aggregates) {
      slots_.SlotOf(agg.var.name);
    }

    std::vector<Binding> rows;
    rows.push_back(Binding(slots_.size(), kNullTermId));
    KGQAN_ASSIGN_OR_RETURN(rows, EvalGroup(query.where, std::move(rows)));

    if (query.form == Query::Form::kAsk) {
      return ResultSet::Ask(!rows.empty());
    }
    return Project(query, std::move(rows));
  }

 private:
  uint64_t Compile(const TermOrVar& tv, bool* dead) {
    if (IsVar(tv)) {
      return CompiledPattern::kVarFlag |
             static_cast<uint64_t>(slots_.SlotOf(AsVar(tv).name));
    }
    auto id = store_.dictionary().Find(AsTerm(tv));
    if (!id.has_value()) {
      *dead = true;
      return 0;
    }
    return *id;
  }

  // Resolves a compiled component against a binding: a constant id, the
  // bound value of its slot, or kNullTermId (wildcard).
  static TermId Resolve(uint64_t c, const Binding& b) {
    if (!CompiledPattern::IsSlot(c)) return static_cast<TermId>(c);
    return b[CompiledPattern::Slot(c)];
  }

  // Id of `term` for use in bindings: the store id when the term occurs in
  // the KG, otherwise a query-local overlay id above the store's range.
  TermId InternValue(const Term& term) {
    if (auto id = store_.dictionary().Find(term); id.has_value()) return *id;
    auto [it, inserted] =
        overlay_ids_.try_emplace(rdf::ToNTriples(term), TermId{0});
    if (inserted) {
      overlay_terms_.push_back(term);
      it->second = static_cast<TermId>(store_.dictionary().MaxId() +
                                       overlay_terms_.size());
    }
    return it->second;
  }

  // Term lookup that also resolves overlay ids (pre-condition: id is a
  // store id or was returned by InternValue; not kNullTermId).
  const Term& TermOf(TermId id) const {
    TermId max_store = store_.dictionary().MaxId();
    if (id <= max_store) return store_.dictionary().Get(id);
    return overlay_terms_[id - max_store - 1];
  }

  // Estimated number of matches given which slots are bound (for join
  // ordering); bound slots are treated as constants of unknown value, so we
  // use the count with only the constant components as an upper bound.
  size_t EstimateCost(const CompiledPattern& cp,
                      const std::vector<bool>& bound) const {
    if (cp.dead) return 0;
    auto comp = [&](uint64_t c) -> TermId {
      if (!CompiledPattern::IsSlot(c)) return static_cast<TermId>(c);
      return kNullTermId;
    };
    size_t base = store_.CountMatches(comp(cp.s), comp(cp.p), comp(cp.o));
    // Each bound variable component divides the estimate (heuristic).
    auto discount = [&](uint64_t c, size_t est) {
      if (CompiledPattern::IsSlot(c) && bound[CompiledPattern::Slot(c)]) {
        return std::max<size_t>(1, est / 64);
      }
      return est;
    };
    base = discount(cp.s, base);
    base = discount(cp.p, base);
    base = discount(cp.o, base);
    return base;
  }

  StatusOr<std::vector<Binding>> EvalGroup(const GroupGraphPattern& group,
                                           std::vector<Binding> rows) {
    // 1. Text patterns first: they seed candidate sets in relevance order.
    for (const TextPattern& tp : group.text_patterns) {
      KGQAN_ASSIGN_OR_RETURN(text::ContainsQuery cq,
                             text::ParseContainsQuery(tp.expr));
      std::vector<TermId> candidates =
          text_index_.MatchLiterals(cq, options_.text_candidate_limit);
      size_t slot = slots_.SlotOf(tp.var.name);
      std::vector<Binding> next;
      for (const Binding& row : rows) {
        if (row[slot] != kNullTermId) {
          // Already bound: keep iff it satisfies the text query.
          if (std::find(candidates.begin(), candidates.end(), row[slot]) !=
              candidates.end()) {
            next.push_back(row);
          }
          continue;
        }
        for (TermId cand : candidates) {
          Binding ext = row;
          ext[slot] = cand;
          next.push_back(std::move(ext));
          if (next.size() >= options_.max_rows) break;
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 1b. Inline VALUES bindings.  Terms that do not occur in the KG are
    // interned into a query-local overlay dictionary: per SPARQL semantics
    // they still bind (e.g. batch-query discriminator values), they simply
    // can never join a stored triple.
    for (const InlineValues& iv : group.values) {
      size_t slot = slots_.SlotOf(iv.var.name);
      std::vector<TermId> ids;
      for (const Term& t : iv.values) {
        ids.push_back(InternValue(t));
      }
      std::vector<Binding> next;
      for (const Binding& row : rows) {
        if (row[slot] != kNullTermId) {
          if (std::find(ids.begin(), ids.end(), row[slot]) != ids.end()) {
            next.push_back(row);
          }
          continue;
        }
        for (TermId id : ids) {
          Binding ext = row;
          ext[slot] = id;
          next.push_back(std::move(ext));
          if (next.size() >= options_.max_rows) break;
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 2. Triple patterns, greedily ordered by estimated cost.
    std::vector<CompiledPattern> patterns;
    for (const TriplePattern& tp : group.triples) {
      CompiledPattern cp;
      cp.s = Compile(tp.s, &cp.dead);
      cp.p = Compile(tp.p, &cp.dead);
      cp.o = Compile(tp.o, &cp.dead);
      patterns.push_back(cp);
    }
    std::vector<bool> bound(slots_.size(), false);
    // Slots bound by incoming rows (all rows share the same bound set by
    // construction: they come from the same pattern prefix).
    if (!rows.empty()) {
      for (size_t i = 0; i < slots_.size(); ++i) {
        bound[i] = rows.front()[i] != kNullTermId;
      }
    }
    std::vector<bool> used(patterns.size(), false);
    for (size_t step = 0; step < patterns.size(); ++step) {
      // Pick the cheapest unused pattern.
      size_t best = patterns.size();
      size_t best_cost = std::numeric_limits<size_t>::max();
      for (size_t i = 0; i < patterns.size(); ++i) {
        if (used[i]) continue;
        size_t cost = EstimateCost(patterns[i], bound);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
        }
      }
      used[best] = true;
      const CompiledPattern& cp = patterns[best];
      std::vector<Binding> next;
      if (!cp.dead) {
        if (options_.intra_query_threads > 1 &&
            options_.eval_pool != nullptr) {
          KGQAN_ASSIGN_OR_RETURN(next, ShardedJoinStep(cp, rows));
        } else {
          next = SerialJoinStep(cp, rows);
        }
      }
      rows = std::move(next);
      if (rows.empty()) break;
      // Update bound set.
      for (uint64_t c : {cp.s, cp.p, cp.o}) {
        if (CompiledPattern::IsSlot(c)) bound[CompiledPattern::Slot(c)] = true;
      }
    }

    // 3. UNION blocks: solutions of the branches are concatenated (each
    // branch joins against the incoming rows independently).
    for (const auto& branches : group.unions) {
      std::vector<Binding> next;
      for (const GroupGraphPattern& branch : branches) {
        auto matched = EvalGroup(branch, rows);
        if (!matched.ok()) return matched.status();
        for (Binding& m : *matched) {
          next.push_back(std::move(m));
          if (next.size() >= options_.max_rows) break;
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 4. OPTIONAL groups: left join.
    for (const GroupGraphPattern& opt : group.optionals) {
      std::vector<Binding> next;
      for (const Binding& row : rows) {
        std::vector<Binding> seed{row};
        auto matched = EvalGroup(opt, std::move(seed));
        if (!matched.ok()) return matched.status();
        if (matched->empty()) {
          next.push_back(row);
        } else {
          for (Binding& m : *matched) {
            next.push_back(std::move(m));
            if (next.size() >= options_.max_rows) break;
          }
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 5. Filters.
    for (const Expr& filter : group.filters) {
      std::vector<Binding> next;
      for (Binding& row : rows) {
        if (EvalExprBool(filter, row)) next.push_back(std::move(row));
      }
      rows = std::move(next);
    }
    return rows;
  }

  // ---- Join-step execution (serial and morsel-sharded) ----

  // The legacy serial join step: extend every row by every match of `cp`,
  // in (row, index) order, capped at max_rows.  This is the
  // intra_query_threads == 1 path and stays byte-identical to the original
  // evaluator (no extra allocations, no polling).
  std::vector<Binding> SerialJoinStep(const CompiledPattern& cp,
                                      const std::vector<Binding>& rows) {
    std::vector<Binding> next;
    for (const Binding& row : rows) {
      TermId s = Resolve(cp.s, row);
      TermId p = Resolve(cp.p, row);
      TermId o = Resolve(cp.o, row);
      store_.Match(s, p, o, [&](const rdf::Triple& t) {
        Binding ext = row;
        if (CompiledPattern::IsSlot(cp.s)) {
          ext[CompiledPattern::Slot(cp.s)] = t.s;
        }
        if (CompiledPattern::IsSlot(cp.p)) {
          ext[CompiledPattern::Slot(cp.p)] = t.p;
        }
        if (CompiledPattern::IsSlot(cp.o)) {
          ext[CompiledPattern::Slot(cp.o)] = t.o;
        }
        next.push_back(std::move(ext));
        return next.size() < options_.max_rows;
      });
      if (next.size() >= options_.max_rows) break;
    }
    return next;
  }

  // One morsel of a sharded join step: a contiguous run of input rows and,
  // in single-row (range-slice) mode, a slice of that row's scan range.
  struct Morsel {
    size_t row_begin = 0;
    size_t row_end = 0;  // Exclusive.
    store::ScanRange range;
    TermId s = kNullTermId;
    TermId p = kNullTermId;
    TermId o = kNullTermId;
    bool has_range = false;  // True in range-slice mode.
  };

  // Morsel-driven parallel join step.  Produces exactly SerialJoinStep's
  // rows in exactly its order: the morsels partition the serial (row,
  // index) iteration space contiguously and are merged back in morsel
  // order, and a morsel's local max_rows cap can only drop rows the
  // global cap would have dropped anyway (a morsel's share of the serial
  // first-max_rows prefix is never more than max_rows rows).
  StatusOr<std::vector<Binding>> ShardedJoinStep(
      const CompiledPattern& cp, const std::vector<Binding>& rows) {
    const size_t threads = options_.intra_query_threads;
    const size_t target_morsels = threads * 4;
    std::vector<Morsel> morsels;
    if (rows.size() > std::max<size_t>(64, threads * 8)) {
      // Many input rows: chunk the row list itself; each chunk re-uses the
      // serial per-row locate + scan.
      size_t k = std::min(rows.size(), target_morsels);
      for (size_t i = 0; i < k; ++i) {
        Morsel m;
        m.row_begin = rows.size() * i / k;
        m.row_end = rows.size() * (i + 1) / k;
        if (m.row_end > m.row_begin) morsels.push_back(m);
      }
    } else {
      // Few rows (typically the first pattern's single seed row): slice
      // each row's located index range.
      size_t total = 0;
      std::vector<store::ScanRange> ranges;
      std::vector<std::array<TermId, 3>> resolved;
      ranges.reserve(rows.size());
      resolved.reserve(rows.size());
      for (const Binding& row : rows) {
        TermId s = Resolve(cp.s, row);
        TermId p = Resolve(cp.p, row);
        TermId o = Resolve(cp.o, row);
        ranges.push_back(store_.Locate(s, p, o));
        resolved.push_back({s, p, o});
        total += ranges.back().size();
      }
      if (total < options_.min_shard_work) return SerialJoinStep(cp, rows);
      size_t slice = std::max<size_t>(
          {size_t{1}, options_.min_morsel_triples, total / target_morsels});
      for (size_t r = 0; r < rows.size(); ++r) {
        size_t parts = (ranges[r].size() + slice - 1) / slice;
        for (const store::ScanRange& part :
             store::TripleStore::Partition(ranges[r], parts)) {
          Morsel m;
          m.row_begin = r;
          m.row_end = r + 1;
          m.range = part;
          m.s = resolved[r][0];
          m.p = resolved[r][1];
          m.o = resolved[r][2];
          m.has_range = true;
          morsels.push_back(m);
        }
      }
    }
    if (morsels.size() <= 1) return SerialJoinStep(cp, rows);

    obs::ScopedSpan span("sparql.eval.sharded_step");
    std::vector<std::vector<Binding>> outs(morsels.size());
    std::atomic<bool> cancelled{false};
    util::ParallelFor(options_.eval_pool, morsels.size(), [&](size_t m) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const Morsel& morsel = morsels[m];
      std::vector<Binding>& out = outs[m];
      size_t visited = 0;
      for (size_t r = morsel.row_begin; r < morsel.row_end; ++r) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const Binding& row = rows[r];
        TermId s, p, o;
        store::ScanRange range;
        if (morsel.has_range) {
          s = morsel.s;
          p = morsel.p;
          o = morsel.o;
          range = morsel.range;
        } else {
          s = Resolve(cp.s, row);
          p = Resolve(cp.p, row);
          o = Resolve(cp.o, row);
          range = store_.Locate(s, p, o);
        }
        store_.MatchRange(range, s, p, o, [&](const rdf::Triple& t) {
          // Deadline poll: cheap enough every 256 triples that serving
          // deadlines bite mid-scan, not only between patterns.
          if ((++visited & 255u) == 0 && util::Cancelled()) {
            cancelled.store(true, std::memory_order_relaxed);
            return false;
          }
          Binding ext = row;
          if (CompiledPattern::IsSlot(cp.s)) {
            ext[CompiledPattern::Slot(cp.s)] = t.s;
          }
          if (CompiledPattern::IsSlot(cp.p)) {
            ext[CompiledPattern::Slot(cp.p)] = t.p;
          }
          if (CompiledPattern::IsSlot(cp.o)) {
            ext[CompiledPattern::Slot(cp.o)] = t.o;
          }
          out.push_back(std::move(ext));
          return out.size() < options_.max_rows;
        });
        if (out.size() >= options_.max_rows) break;
      }
    });
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("evaluation cancelled mid-scan");
    }

    // Ordered merge: morsel order is serial order; truncate at the global
    // cap exactly where the serial loop would have stopped.
    size_t total_rows = 0;
    for (const std::vector<Binding>& out : outs) total_rows += out.size();
    std::vector<Binding> next;
    next.reserve(std::min(total_rows, options_.max_rows));
    for (std::vector<Binding>& out : outs) {
      for (Binding& b : out) {
        next.push_back(std::move(b));
        if (next.size() >= options_.max_rows) break;
      }
      if (next.size() >= options_.max_rows) break;
    }
    ++sharded_steps_;
    morsel_count_ += morsels.size();
    if (span.recording()) {
      span.AddAttribute("morsels", std::to_string(morsels.size()));
      span.AddAttribute("rows_in", std::to_string(rows.size()));
      span.AddAttribute("rows_out", std::to_string(next.size()));
    }
    static obs::Histogram& step_ms = obs::MetricsRegistry::Global().GetHistogram(
        "sparql.eval.sharded_step_ms");
    step_ms.Record(span.ElapsedMillis());
    return next;
  }

 public:
  // Number of join steps that actually ran sharded / total morsels they
  // spawned (for the sparql.eval.* registry metrics; 0 on the serial path).
  size_t sharded_steps() const { return sharded_steps_; }
  size_t morsels() const { return morsel_count_; }

 private:
  // ---- FILTER expression evaluation ----

  // Three-valued-lite: comparisons involving unbound vars are false.
  bool EvalExprBool(const Expr& e, const Binding& b) const {
    switch (e.op) {
      case ExprOp::kAnd:
        return EvalExprBool(*e.lhs, b) && EvalExprBool(*e.rhs, b);
      case ExprOp::kOr:
        return EvalExprBool(*e.lhs, b) || EvalExprBool(*e.rhs, b);
      case ExprOp::kNot:
        return !EvalExprBool(*e.lhs, b);
      case ExprOp::kBound: {
        auto slot = slots_.Find(e.var.name);
        return slot.has_value() && b[*slot] != kNullTermId;
      }
      case ExprOp::kEq:
      case ExprOp::kNe:
      case ExprOp::kLt:
      case ExprOp::kLe:
      case ExprOp::kGt:
      case ExprOp::kGe:
        return EvalComparison(e, b);
      case ExprOp::kVar: {
        auto slot = slots_.Find(e.var.name);
        if (!slot.has_value() || b[*slot] == kNullTermId) return false;
        return TermOf(b[*slot]).value == "true";
      }
      case ExprOp::kConstant:
        return e.constant.value == "true";
      case ExprOp::kRegex: {
        std::optional<Term> subject = EvalOperand(*e.lhs, b);
        std::optional<Term> pattern = EvalOperand(*e.rhs, b);
        if (!subject.has_value() || !pattern.has_value()) return false;
        // Construction failures (bad patterns) evaluate to false rather
        // than erroring, matching FILTER error semantics.
        std::regex re;
        if (auto status = CompileRegex(pattern->value, &re); !status) {
          return false;
        }
        return std::regex_search(subject->value, re);
      }
      case ExprOp::kContains: {
        std::optional<Term> hay = EvalOperand(*e.lhs, b);
        std::optional<Term> needle = EvalOperand(*e.rhs, b);
        if (!hay.has_value() || !needle.has_value()) return false;
        return hay->value.find(needle->value) != std::string::npos;
      }
      case ExprOp::kIsIri: {
        std::optional<Term> t = EvalOperand(*e.lhs, b);
        return t.has_value() && t->IsIri();
      }
      case ExprOp::kIsLiteral: {
        std::optional<Term> t = EvalOperand(*e.lhs, b);
        return t.has_value() && t->IsLiteral();
      }
      case ExprOp::kStr:
      case ExprOp::kLang: {
        std::optional<Term> t = EvalOperand(e, b);
        return t.has_value() && !t->value.empty();
      }
    }
    return false;
  }

  static bool CompileRegex(const std::string& pattern, std::regex* out) {
    try {
      *out = std::regex(pattern, std::regex::ECMAScript);
      return true;
    } catch (const std::regex_error&) {
      return false;
    }
  }

  std::optional<Term> EvalOperand(const Expr& e, const Binding& b) const {
    if (e.op == ExprOp::kConstant) return e.constant;
    if (e.op == ExprOp::kVar) {
      auto slot = slots_.Find(e.var.name);
      if (!slot.has_value() || b[*slot] == kNullTermId) return std::nullopt;
      return TermOf(b[*slot]);
    }
    if (e.op == ExprOp::kStr) {
      std::optional<Term> inner = EvalOperand(*e.lhs, b);
      if (!inner.has_value()) return std::nullopt;
      return rdf::StringLiteral(inner->value);
    }
    if (e.op == ExprOp::kLang) {
      std::optional<Term> inner = EvalOperand(*e.lhs, b);
      if (!inner.has_value() || !inner->IsLiteral()) return std::nullopt;
      return rdf::StringLiteral(inner->lang);
    }
    return std::nullopt;
  }

  static bool IsNumeric(const Term& t, double* out) {
    if (!t.IsLiteral()) return false;
    const char* begin = t.value.c_str();
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0') return false;
    *out = v;
    return true;
  }

  bool EvalComparison(const Expr& e, const Binding& b) const {
    std::optional<Term> lhs = EvalOperand(*e.lhs, b);
    std::optional<Term> rhs = EvalOperand(*e.rhs, b);
    if (!lhs.has_value() || !rhs.has_value()) return false;
    int cmp;
    double lv, rv;
    if (IsNumeric(*lhs, &lv) && IsNumeric(*rhs, &rv)) {
      cmp = lv < rv ? -1 : (lv > rv ? 1 : 0);
    } else {
      cmp = lhs->value.compare(rhs->value);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      // Equality additionally requires the same kind for non-numeric terms.
      if (cmp == 0 && lhs->kind != rhs->kind) cmp = 1;
    }
    switch (e.op) {
      case ExprOp::kEq:
        return cmp == 0;
      case ExprOp::kNe:
        return cmp != 0;
      case ExprOp::kLt:
        return cmp < 0;
      case ExprOp::kLe:
        return cmp <= 0;
      case ExprOp::kGt:
        return cmp > 0;
      case ExprOp::kGe:
        return cmp >= 0;
      default:
        return false;
    }
  }

  // ---- Projection ----

  // Evaluates one aggregate over the solution rows.
  Term EvalAggregate(const Aggregate& agg,
                     const std::vector<Binding>& rows) const {
    auto slot = slots_.Find(agg.var.name);
    std::vector<TermId> values;
    if (slot.has_value()) {
      std::unordered_set<TermId> seen;
      for (const Binding& b : rows) {
        if (b[*slot] == kNullTermId) continue;
        if (agg.distinct && !seen.insert(b[*slot]).second) continue;
        values.push_back(b[*slot]);
      }
    }
    switch (agg.op) {
      case Aggregate::Op::kCount:
        return rdf::IntLiteral(static_cast<int64_t>(values.size()));
      case Aggregate::Op::kMin:
      case Aggregate::Op::kMax: {
        std::optional<TermId> best;
        std::optional<double> best_num;
        for (TermId id : values) {
          const Term& t = TermOf(id);
          double v;
          bool numeric = IsNumeric(t, &v);
          if (!best.has_value()) {
            best = id;
            if (numeric) best_num = v;
            continue;
          }
          bool better;
          if (numeric && best_num.has_value()) {
            better = agg.op == Aggregate::Op::kMin ? v < *best_num
                                                   : v > *best_num;
          } else {
            const Term& bt = TermOf(*best);
            better = agg.op == Aggregate::Op::kMin ? t.value < bt.value
                                                   : t.value > bt.value;
          }
          if (better) {
            best = id;
            best_num = numeric ? std::optional<double>(v) : std::nullopt;
          }
        }
        if (!best.has_value()) return rdf::IntLiteral(0);
        return TermOf(*best);
      }
      case Aggregate::Op::kSum:
      case Aggregate::Op::kAvg: {
        double sum = 0.0;
        size_t n = 0;
        bool integral = true;
        for (TermId id : values) {
          const Term& t = TermOf(id);
          double v;
          if (!IsNumeric(t, &v)) continue;
          if (t.datatype != rdf::vocab::kXsdInteger) integral = false;
          sum += v;
          ++n;
        }
        if (agg.op == Aggregate::Op::kAvg) {
          return rdf::DoubleLiteral(n == 0 ? 0.0 : sum / double(n));
        }
        if (integral) return rdf::IntLiteral(static_cast<int64_t>(sum));
        return rdf::DoubleLiteral(sum);
      }
    }
    return rdf::IntLiteral(0);
  }

  StatusOr<ResultSet> Project(const Query& query,
                              std::vector<Binding> rows) {
    // Aggregates: single-row result over the whole solution set.
    if (!query.aggregates.empty()) {
      std::vector<std::string> cols;
      Row out_row;
      for (const Aggregate& agg : query.aggregates) {
        cols.push_back(agg.alias.name);
        out_row.push_back(EvalAggregate(agg, rows));
      }
      ResultSet rs(std::move(cols));
      rs.AddRow(std::move(out_row));
      return rs;
    }

    // ORDER BY: sort the solution rows before projection.
    if (!query.order_by.empty()) {
      std::vector<std::pair<size_t, bool>> keys;  // (slot, descending)
      for (const OrderKey& key : query.order_by) {
        auto slot = slots_.Find(key.var.name);
        if (slot.has_value()) keys.emplace_back(*slot, key.descending);
      }
      auto term_less = [&](TermId a, TermId b) {
        // Unbound sorts first; numbers numerically; everything else by
        // lexical form.
        if (a == b) return false;
        if (a == kNullTermId) return true;
        if (b == kNullTermId) return false;
        const Term& ta = TermOf(a);
        const Term& tb = TermOf(b);
        double va, vb;
        if (IsNumeric(ta, &va) && IsNumeric(tb, &vb)) {
          if (va != vb) return va < vb;
        }
        return ta.value < tb.value;
      };
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Binding& a, const Binding& b) {
                         for (const auto& [slot, desc] : keys) {
                           if (a[slot] == b[slot]) continue;
                           bool less = term_less(a[slot], b[slot]);
                           return desc ? !less : less;
                         }
                         return false;
                       });
    }

    // Column list.
    std::vector<std::string> cols;
    std::vector<size_t> col_slots;
    if (query.select_all) {
      // All pattern variables in first-appearance order (SlotMap does not
      // keep reverse order; re-derive names by walking the group in the
      // same order CollectVars did).
      std::vector<std::string> names;
      CollectVarNames(query.where, &names);
      for (const std::string& name : names) {
        cols.push_back(name);
        col_slots.push_back(*slots_.Find(name));
      }
    } else {
      for (const Var& v : query.select_vars) {
        cols.push_back(v.name);
        col_slots.push_back(slots_.SlotOf(v.name));
      }
    }

    ResultSet rs(cols);
    std::set<std::vector<TermId>> seen;
    size_t skipped = 0;
    for (const Binding& b : rows) {
      std::vector<TermId> key;
      key.reserve(col_slots.size());
      for (size_t slot : col_slots) key.push_back(b[slot]);
      if (query.distinct) {
        if (!seen.insert(key).second) continue;
      }
      if (skipped < query.offset) {
        ++skipped;
        continue;
      }
      Row row;
      row.reserve(col_slots.size());
      for (TermId id : key) {
        if (id == kNullTermId) {
          row.push_back(std::nullopt);
        } else {
          row.push_back(TermOf(id));
        }
      }
      rs.AddRow(std::move(row));
      if (query.limit > 0 && rs.NumRows() >= query.limit) break;
    }
    return rs;
  }

  // Collects variable names in first-appearance order (matches SlotMap
  // insertion order for the same traversal).
  static void CollectVarNames(const GroupGraphPattern& group,
                              std::vector<std::string>* names) {
    auto visit = [&](const TermOrVar& tv) {
      if (IsVar(tv)) {
        const std::string& n = AsVar(tv).name;
        if (std::find(names->begin(), names->end(), n) == names->end()) {
          names->push_back(n);
        }
      }
    };
    for (const TriplePattern& tp : group.triples) {
      visit(tp.s);
      visit(tp.p);
      visit(tp.o);
    }
    auto visit_var = [&](const Var& v) {
      if (std::find(names->begin(), names->end(), v.name) == names->end()) {
        names->push_back(v.name);
      }
    };
    for (const TextPattern& tp : group.text_patterns) {
      visit_var(tp.var);
    }
    for (const InlineValues& iv : group.values) {
      visit_var(iv.var);
    }
    for (const GroupGraphPattern& opt : group.optionals) {
      CollectVarNames(opt, names);
    }
    for (const auto& branches : group.unions) {
      for (const GroupGraphPattern& branch : branches) {
        CollectVarNames(branch, names);
      }
    }
  }

  const store::TripleStore& store_;
  const text::TextIndex& text_index_;
  const EvalOptions& options_;
  SlotMap slots_;
  // Query-local dictionary overlay for VALUES terms absent from the store
  // (their ids live above dictionary().MaxId(); see InternValue/TermOf).
  std::vector<Term> overlay_terms_;
  std::unordered_map<std::string, TermId> overlay_ids_;
  size_t sharded_steps_ = 0;
  size_t morsel_count_ = 0;
};

}  // namespace

StatusOr<ResultSet> Evaluate(const Query& query,
                             const store::TripleStore& store,
                             const text::TextIndex& text_index,
                             const EvalOptions& options) {
  // Registry instrumentation: evaluation volume and result-set sizes
  // (bucket bounds are row counts, not latencies).
  static obs::Counter& evaluations =
      obs::MetricsRegistry::Global().GetCounter("sparql.evaluator.evaluations");
  static obs::Histogram& result_rows =
      obs::MetricsRegistry::Global().GetHistogram(
          "sparql.evaluator.result_rows",
          {0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0});
  evaluations.Add(1);
  Evaluator evaluator(store, text_index, options);
  StatusOr<ResultSet> result = evaluator.Run(query);
  if (result.ok() && !result->is_ask()) {
    result_rows.Record(double(result->NumRows()));
  }
  if (evaluator.sharded_steps() > 0) {
    // Sharded-path-only instrumentation: the serial path must not touch
    // the registry beyond the pre-existing counters above.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static obs::Counter& sharded_queries =
        registry.GetCounter("sparql.eval.sharded_queries");
    static obs::Counter& sharded_steps =
        registry.GetCounter("sparql.eval.sharded_steps");
    static obs::Counter& morsels = registry.GetCounter("sparql.eval.morsels");
    sharded_queries.Add(1);
    sharded_steps.Add(evaluator.sharded_steps());
    morsels.Add(evaluator.morsels());
    if (obs::Trace* trace = obs::CurrentTrace()) {
      trace->AddCounter(obs::TraceCounter::kEvalMorsels,
                        evaluator.morsels());
    }
  }
  return result;
}

}  // namespace kgqan::sparql
