#include "sparql/evaluator.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparql/planner.h"
#include "store/compact_store.h"
#include "store/sharded_store.h"
#include "text/sharded_text_index.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace kgqan::sparql {

namespace {

EvalProfile*& CurrentEvalProfileSlot() {
  thread_local EvalProfile* profile = nullptr;
  return profile;
}

}  // namespace

ScopedEvalProfile::ScopedEvalProfile(EvalProfile* profile)
    : saved_(CurrentEvalProfileSlot()) {
  CurrentEvalProfileSlot() = profile;
}

ScopedEvalProfile::~ScopedEvalProfile() { CurrentEvalProfileSlot() = saved_; }

EvalProfile* CurrentEvalProfile() { return CurrentEvalProfileSlot(); }

namespace {

using rdf::kNullTermId;
using rdf::Term;
using rdf::TermId;
using util::Status;
using util::StatusOr;

// A solution row: slot -> term id (kNullTermId = unbound).
using Binding = std::vector<TermId>;

// Maps variable names to dense slots across the whole query.
class SlotMap {
 public:
  size_t SlotOf(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    size_t slot = slots_.size();
    slots_.emplace(name, slot);
    return slot;
  }
  std::optional<size_t> Find(const std::string& name) const {
    auto it = slots_.find(name);
    if (it == slots_.end()) return std::nullopt;
    return it->second;
  }
  size_t size() const { return slots_.size(); }

 private:
  std::unordered_map<std::string, size_t> slots_;
};

void CollectVars(const GroupGraphPattern& group, SlotMap* slots) {
  auto visit = [&](const TermOrVar& tv) {
    if (IsVar(tv)) slots->SlotOf(AsVar(tv).name);
  };
  for (const TriplePattern& tp : group.triples) {
    visit(tp.s);
    visit(tp.p);
    visit(tp.o);
  }
  for (const TextPattern& tp : group.text_patterns) {
    slots->SlotOf(tp.var.name);
  }
  for (const InlineValues& iv : group.values) {
    slots->SlotOf(iv.var.name);
  }
  for (const GroupGraphPattern& opt : group.optionals) {
    CollectVars(opt, slots);
  }
  for (const auto& branches : group.unions) {
    for (const GroupGraphPattern& branch : branches) {
      CollectVars(branch, slots);
    }
  }
}

// A columnar batch of solution rows: one TermId vector per variable slot.
// Row r of the batch is (cols_[0][r], ..., cols_[n-1][r]); kNullTermId
// marks an unbound slot, exactly as in the row-at-a-time Binding.  The
// vectorized evaluation path carries these instead of Binding vectors, so
// a join step touches a handful of contiguous arrays instead of one heap
// allocation per intermediate row.
class Chunk {
 public:
  explicit Chunk(size_t num_slots) : cols_(num_slots) {}

  size_t rows() const { return rows_; }
  size_t num_slots() const { return cols_.size(); }
  TermId At(size_t row, size_t slot) const { return cols_[slot][row]; }
  const std::vector<TermId>& Col(size_t slot) const { return cols_[slot]; }

  void Reserve(size_t n) {
    for (std::vector<TermId>& col : cols_) col.reserve(n);
  }
  void AppendNullRow() {
    for (std::vector<TermId>& col : cols_) col.push_back(kNullTermId);
    ++rows_;
  }
  void AppendRow(const Chunk& src, size_t r) {
    for (size_t s = 0; s < cols_.size(); ++s) {
      cols_[s].push_back(src.cols_[s][r]);
    }
    ++rows_;
  }
  // Appends src row r with one slot overwritten (VALUES / text fan-out).
  void AppendRowSet(const Chunk& src, size_t r, size_t slot, TermId v) {
    for (size_t s = 0; s < cols_.size(); ++s) {
      cols_[s].push_back(s == slot ? v : src.cols_[s][r]);
    }
    ++rows_;
  }
  // Extends this batch with a join result: input row `r` with the pattern
  // slots overwritten from `t` per the source map (0 = input column,
  // 1/2/3 = t.s/t.p/t.o; the map is built in s,p,o order so a variable
  // repeated within one pattern keeps the row path's last-write-wins).
  void AppendJoinRow(const Chunk& in, size_t r, const rdf::Triple& t,
                     const std::vector<uint8_t>& src) {
    for (size_t s = 0; s < cols_.size(); ++s) {
      TermId v;
      switch (src[s]) {
        case 1:
          v = t.s;
          break;
        case 2:
          v = t.p;
          break;
        case 3:
          v = t.o;
          break;
        default:
          v = in.cols_[s][r];
          break;
      }
      cols_[s].push_back(v);
    }
    ++rows_;
  }
  // Bulk-appends the first rows of `other` until this batch holds `cap`
  // rows — the ordered-merge truncation, done column-wise.
  void AppendChunkCapped(const Chunk& other, size_t cap) {
    if (rows_ >= cap) return;
    size_t take = std::min(other.rows_, cap - rows_);
    for (size_t s = 0; s < cols_.size(); ++s) {
      cols_[s].insert(cols_[s].end(), other.cols_[s].begin(),
                      other.cols_[s].begin() + static_cast<ptrdiff_t>(take));
    }
    rows_ += take;
  }
  Binding ToBinding(size_t r) const {
    Binding b(cols_.size(), kNullTermId);
    for (size_t s = 0; s < cols_.size(); ++s) b[s] = cols_[s][r];
    return b;
  }

 private:
  std::vector<std::vector<TermId>> cols_;
  size_t rows_ = 0;
};

// Row view over a Chunk with Binding's operator[] shape, so FILTER and
// aggregate evaluation are shared between the two representations.
struct ChunkRow {
  const Chunk* chunk;
  size_t row;
  TermId operator[](size_t slot) const { return chunk->At(row, slot); }
};

// How a pattern component relates to the rows of one input batch.  The
// kernels classify from the *actual columns*, never from the planner's
// bound-slot set: after UNION concatenation a slot can be bound in some
// rows and unbound in others (kMixed), which only the per-row probe kernel
// handles.
enum class CompKind : uint8_t {
  kConst,    // A constant term id.
  kFree,     // A slot unbound in every row: wildcard.
  kVarying,  // A slot bound in every row: join key.
  kMixed,    // Bound in some rows only: probe per row.
};

// Generic over the store/text-index pair: store::TripleStore +
// text::TextIndex (the single-store path) or store::ShardedStore +
// text::ShardedTextIndex.  StoreT supplies dictionary(), Locate() ->
// StoreT::Range, Match/MatchRange, Partition(Range, n) and
// EstimateMatches with identical semantics; every ordering and cap
// decision below is expressed against that contract, which is what makes
// the sharded backend byte-identical to the single store.
template <typename StoreT, typename TextT>
class Evaluator {
 public:
  Evaluator(const StoreT& store, const TextT& text_index,
            const EvalOptions& options)
      : store_(store), text_index_(text_index), options_(options),
        profile_(CurrentEvalProfile()) {
    // Per-step analysis (operator stats, step spans) runs only when a
    // profile sink is bound or the active trace records spans — unsampled
    // serving keeps the exact pre-existing cost profile.
    obs::Trace* trace = obs::CurrentTrace();
    analyze_ =
        profile_ != nullptr || (trace != nullptr && trace->spans_enabled());
  }

  StatusOr<ResultSet> Run(const Query& query) {
    CollectVars(query.where, &slots_);
    // Register aggregate / projection vars so projection can resolve them.
    for (const Var& v : query.select_vars) slots_.SlotOf(v.name);
    for (const CountAggregate& agg : query.aggregates) {
      slots_.SlotOf(agg.var.name);
    }

    if (options_.vectorized) {
      Chunk chunk(slots_.size());
      chunk.AppendNullRow();
      KGQAN_ASSIGN_OR_RETURN(chunk,
                             EvalGroupChunked(query.where, std::move(chunk)));
      if (query.form == Query::Form::kAsk) {
        return ResultSet::Ask(chunk.rows() > 0);
      }
      return ProjectChunk(query, std::move(chunk));
    }

    std::vector<Binding> rows;
    rows.push_back(Binding(slots_.size(), kNullTermId));
    KGQAN_ASSIGN_OR_RETURN(rows, EvalGroup(query.where, std::move(rows)));

    if (query.form == Query::Form::kAsk) {
      return ResultSet::Ask(!rows.empty());
    }
    return Project(query, std::move(rows));
  }

 private:
  uint64_t Compile(const TermOrVar& tv, bool* dead) {
    if (IsVar(tv)) {
      return CompiledTriple::kVarFlag |
             static_cast<uint64_t>(slots_.SlotOf(AsVar(tv).name));
    }
    auto id = store_.dictionary().Find(AsTerm(tv));
    if (!id.has_value()) {
      *dead = true;
      return 0;
    }
    return *id;
  }

  std::vector<CompiledTriple> CompileTriples(const GroupGraphPattern& group) {
    std::vector<CompiledTriple> patterns;
    patterns.reserve(group.triples.size());
    for (const TriplePattern& tp : group.triples) {
      CompiledTriple cp;
      cp.s = Compile(tp.s, &cp.dead);
      cp.p = Compile(tp.p, &cp.dead);
      cp.o = Compile(tp.o, &cp.dead);
      patterns.push_back(cp);
    }
    return patterns;
  }

  // Slots bound by the incoming solution rows, read off the first row (the
  // rows of one group share a bound set except after union concatenation,
  // where a wrong guess only costs the planner estimate quality — the
  // kernels classify boundness from the actual columns).  Planning input
  // only.
  std::vector<bool> BoundSlots(const std::vector<Binding>& rows) const {
    std::vector<bool> bound(slots_.size(), false);
    if (!rows.empty()) {
      for (size_t i = 0; i < slots_.size(); ++i) {
        bound[i] = rows.front()[i] != kNullTermId;
      }
    }
    return bound;
  }
  std::vector<bool> BoundSlots(const Chunk& chunk) const {
    std::vector<bool> bound(slots_.size(), false);
    if (chunk.rows() > 0) {
      for (size_t i = 0; i < slots_.size(); ++i) {
        bound[i] = chunk.At(0, i) != kNullTermId;
      }
    }
    return bound;
  }

  // Plan instrumentation, for multi-pattern groups only: single-pattern
  // groups (the linking probes) have nothing to reorder and keep their
  // pre-existing metric footprint.
  void NotePlan(size_t num_patterns, const JoinPlan& plan) {
    if (num_patterns < 2) return;
    ++planned_groups_;
    if (plan.reordered) ++reordered_plans_;
    obs::ScopedSpan span("sparql.plan");
    if (span.recording()) {
      span.AddAttribute("patterns", std::to_string(num_patterns));
      span.AddAttribute("reordered", plan.reordered ? "1" : "0");
      if (!plan.steps.empty()) {
        span.AddAttribute("entry_estimate",
                          std::to_string(plan.steps.front().estimate));
      }
    }
  }

  // Publishes one executed join step to the active span and the bound
  // operator-stats sink.  Called only on the analyze path.
  void NoteStep(const PlanStep& step, size_t order, size_t rows_in,
                size_t rows_out, size_t batches, size_t morsels,
                const char* kernel, obs::ScopedSpan* span) {
    if (span != nullptr && span->recording()) {
      span->AddAttribute("pattern", std::to_string(step.pattern));
      span->AddAttribute("order", std::to_string(order));
      span->AddAttribute("estimate", std::to_string(step.estimate));
      span->AddAttribute("rows_in", std::to_string(rows_in));
      span->AddAttribute("rows_out", std::to_string(rows_out));
      span->AddAttribute("kernel", kernel);
    }
    if (profile_ != nullptr) {
      OperatorStats stats;
      stats.pattern = step.pattern;
      stats.order = order;
      stats.estimate = step.estimate;
      stats.rows_in = rows_in;
      stats.rows_out = rows_out;
      stats.batches = batches;
      stats.morsels = morsels;
      stats.kernel = kernel;
      stats.ms = span != nullptr ? span->ElapsedMillis() : 0.0;
      profile_->Add(std::move(stats));
    }
  }

  // Resolves a compiled component against a binding: a constant id, the
  // bound value of its slot, or kNullTermId (wildcard).
  static TermId Resolve(uint64_t c, const Binding& b) {
    if (!CompiledTriple::IsSlot(c)) return static_cast<TermId>(c);
    return b[CompiledTriple::Slot(c)];
  }
  static TermId ResolveChunk(uint64_t c, const Chunk& in, size_t r) {
    if (!CompiledTriple::IsSlot(c)) return static_cast<TermId>(c);
    return in.At(r, CompiledTriple::Slot(c));
  }

  // Id of `term` for use in bindings: the store id when the term occurs in
  // the KG, otherwise a query-local overlay id above the store's range.
  TermId InternValue(const Term& term) {
    if (auto id = store_.dictionary().Find(term); id.has_value()) return *id;
    auto [it, inserted] =
        overlay_ids_.try_emplace(rdf::ToNTriples(term), TermId{0});
    if (inserted) {
      overlay_terms_.push_back(term);
      it->second = static_cast<TermId>(store_.dictionary().MaxId() +
                                       overlay_terms_.size());
    }
    return it->second;
  }

  // Term lookup that also resolves overlay ids (pre-condition: id is a
  // store id or was returned by InternValue; not kNullTermId).  Returned
  // by value: a compact store's front-coded dictionary decodes terms on
  // demand, so there is no stored Term to reference.
  Term TermOf(TermId id) const {
    TermId max_store = store_.dictionary().MaxId();
    if (id <= max_store) return store_.dictionary().Get(id);
    return overlay_terms_[id - max_store - 1];
  }

  StatusOr<std::vector<Binding>> EvalGroup(const GroupGraphPattern& group,
                                           std::vector<Binding> rows) {
    // 1. Text patterns first: they seed candidate sets in relevance order.
    for (const TextPattern& tp : group.text_patterns) {
      KGQAN_ASSIGN_OR_RETURN(text::ContainsQuery cq,
                             text::ParseContainsQuery(tp.expr));
      std::vector<TermId> candidates =
          text_index_.MatchLiterals(cq, options_.text_candidate_limit);
      size_t slot = slots_.SlotOf(tp.var.name);
      std::vector<Binding> next;
      for (const Binding& row : rows) {
        if (row[slot] != kNullTermId) {
          // Already bound: keep iff it satisfies the text query.
          if (std::find(candidates.begin(), candidates.end(), row[slot]) !=
              candidates.end()) {
            next.push_back(row);
          }
          continue;
        }
        for (TermId cand : candidates) {
          Binding ext = row;
          ext[slot] = cand;
          next.push_back(std::move(ext));
          if (next.size() >= options_.max_rows) break;
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 1b. Inline VALUES bindings.  Terms that do not occur in the KG are
    // interned into a query-local overlay dictionary: per SPARQL semantics
    // they still bind (e.g. batch-query discriminator values), they simply
    // can never join a stored triple.
    for (const InlineValues& iv : group.values) {
      size_t slot = slots_.SlotOf(iv.var.name);
      std::vector<TermId> ids;
      for (const Term& t : iv.values) {
        ids.push_back(InternValue(t));
      }
      std::vector<Binding> next;
      for (const Binding& row : rows) {
        if (row[slot] != kNullTermId) {
          if (std::find(ids.begin(), ids.end(), row[slot]) != ids.end()) {
            next.push_back(row);
          }
          continue;
        }
        for (TermId id : ids) {
          Binding ext = row;
          ext[slot] = id;
          next.push_back(std::move(ext));
          if (next.size() >= options_.max_rows) break;
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 2. Triple patterns, ordered by the cardinality planner (greedy
    // selectivity over exact Locate range sizes; see sparql/planner.h).
    // Every evaluation mode executes the same plan, so join order — and
    // with it result order — is mode-independent by construction.
    std::vector<CompiledTriple> patterns = CompileTriples(group);
    JoinPlan plan = PlanJoins(store_, patterns, BoundSlots(rows));
    NotePlan(patterns.size(), plan);
    size_t order = 0;
    for (const PlanStep& step : plan.steps) {
      const CompiledTriple& cp = patterns[step.pattern];
      std::vector<Binding> next;
      if (!cp.dead) {
        // Analyze-only step span/stats: the unanalyzed path executes the
        // exact pre-existing statements (no stopwatch, no optional).
        std::optional<obs::ScopedSpan> span;
        if (analyze_) span.emplace("sparql.eval.step");
        const size_t rows_in = rows.size();
        const size_t morsels_before = morsel_count_;
        if (options_.intra_query_threads > 1 &&
            options_.eval_pool != nullptr) {
          KGQAN_ASSIGN_OR_RETURN(next, ShardedJoinStep(cp, rows));
        } else {
          next = SerialJoinStep(cp, rows);
        }
        if (analyze_) {
          const size_t morsels = morsel_count_ - morsels_before;
          NoteStep(step, order, rows_in, next.size(), /*batches=*/0, morsels,
                   morsels > 0 ? "sharded" : "serial",
                   span.has_value() ? &*span : nullptr);
        }
      }
      rows = std::move(next);
      ++order;
      if (rows.empty()) break;
    }

    // 3. UNION blocks: solutions of the branches are concatenated (each
    // branch joins against the incoming rows independently).
    for (const auto& branches : group.unions) {
      std::vector<Binding> next;
      for (const GroupGraphPattern& branch : branches) {
        auto matched = EvalGroup(branch, rows);
        if (!matched.ok()) return matched.status();
        for (Binding& m : *matched) {
          next.push_back(std::move(m));
          if (next.size() >= options_.max_rows) break;
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 4. OPTIONAL groups: left join.
    for (const GroupGraphPattern& opt : group.optionals) {
      std::vector<Binding> next;
      for (const Binding& row : rows) {
        std::vector<Binding> seed{row};
        auto matched = EvalGroup(opt, std::move(seed));
        if (!matched.ok()) return matched.status();
        if (matched->empty()) {
          next.push_back(row);
        } else {
          for (Binding& m : *matched) {
            next.push_back(std::move(m));
            if (next.size() >= options_.max_rows) break;
          }
        }
        if (next.size() >= options_.max_rows) break;
      }
      rows = std::move(next);
    }

    // 5. Filters.
    for (const Expr& filter : group.filters) {
      std::vector<Binding> next;
      for (Binding& row : rows) {
        if (EvalExprBool(filter, row)) next.push_back(std::move(row));
      }
      rows = std::move(next);
    }
    return rows;
  }

  // ---- Join-step execution (serial and morsel-sharded row paths) ----

  // The legacy serial join step: extend every row by every match of `cp`,
  // in (row, index) order, capped at max_rows.  This is the
  // intra_query_threads == 1 path and stays byte-identical to the original
  // evaluator (no extra allocations, no polling).
  std::vector<Binding> SerialJoinStep(const CompiledTriple& cp,
                                      const std::vector<Binding>& rows) {
    std::vector<Binding> next;
    for (const Binding& row : rows) {
      TermId s = Resolve(cp.s, row);
      TermId p = Resolve(cp.p, row);
      TermId o = Resolve(cp.o, row);
      store_.Match(s, p, o, [&](const rdf::Triple& t) {
        Binding ext = row;
        if (CompiledTriple::IsSlot(cp.s)) {
          ext[CompiledTriple::Slot(cp.s)] = t.s;
        }
        if (CompiledTriple::IsSlot(cp.p)) {
          ext[CompiledTriple::Slot(cp.p)] = t.p;
        }
        if (CompiledTriple::IsSlot(cp.o)) {
          ext[CompiledTriple::Slot(cp.o)] = t.o;
        }
        next.push_back(std::move(ext));
        return next.size() < options_.max_rows;
      });
      if (next.size() >= options_.max_rows) break;
    }
    return next;
  }

  // One morsel of a sharded join step: a contiguous run of input rows and,
  // in single-row (range-slice) mode, a slice of that row's scan range.
  struct Morsel {
    size_t row_begin = 0;
    size_t row_end = 0;  // Exclusive.
    typename StoreT::Range range;
    TermId s = kNullTermId;
    TermId p = kNullTermId;
    TermId o = kNullTermId;
    bool has_range = false;  // True in range-slice mode.
  };

  // Morsel-driven parallel join step.  Produces exactly SerialJoinStep's
  // rows in exactly its order: the morsels partition the serial (row,
  // index) iteration space contiguously and are merged back in morsel
  // order, and a morsel's local max_rows cap can only drop rows the
  // global cap would have dropped anyway (a morsel's share of the serial
  // first-max_rows prefix is never more than max_rows rows).
  StatusOr<std::vector<Binding>> ShardedJoinStep(
      const CompiledTriple& cp, const std::vector<Binding>& rows) {
    const size_t threads = options_.intra_query_threads;
    const size_t target_morsels = threads * 4;
    std::vector<Morsel> morsels;
    if (rows.size() > std::max<size_t>(64, threads * 8)) {
      // Many input rows: chunk the row list itself; each chunk re-uses the
      // serial per-row locate + scan.
      size_t k = std::min(rows.size(), target_morsels);
      for (size_t i = 0; i < k; ++i) {
        Morsel m;
        m.row_begin = rows.size() * i / k;
        m.row_end = rows.size() * (i + 1) / k;
        if (m.row_end > m.row_begin) morsels.push_back(m);
      }
    } else {
      // Few rows (typically the first pattern's single seed row): slice
      // each row's located index range.
      size_t total = 0;
      std::vector<typename StoreT::Range> ranges;
      std::vector<std::array<TermId, 3>> resolved;
      ranges.reserve(rows.size());
      resolved.reserve(rows.size());
      for (const Binding& row : rows) {
        TermId s = Resolve(cp.s, row);
        TermId p = Resolve(cp.p, row);
        TermId o = Resolve(cp.o, row);
        ranges.push_back(store_.Locate(s, p, o));
        resolved.push_back({s, p, o});
        total += ranges.back().size();
      }
      if (total < options_.min_shard_work) return SerialJoinStep(cp, rows);
      size_t slice = std::max<size_t>(
          {size_t{1}, options_.min_morsel_triples, total / target_morsels});
      for (size_t r = 0; r < rows.size(); ++r) {
        size_t parts = (ranges[r].size() + slice - 1) / slice;
        for (const typename StoreT::Range& part :
             store_.Partition(ranges[r], parts)) {
          Morsel m;
          m.row_begin = r;
          m.row_end = r + 1;
          m.range = part;
          m.s = resolved[r][0];
          m.p = resolved[r][1];
          m.o = resolved[r][2];
          m.has_range = true;
          morsels.push_back(m);
        }
      }
    }
    if (morsels.size() <= 1) return SerialJoinStep(cp, rows);

    obs::ScopedSpan span("sparql.eval.sharded_step");
    std::vector<std::vector<Binding>> outs(morsels.size());
    std::atomic<bool> cancelled{false};
    util::ParallelFor(options_.eval_pool, morsels.size(), [&](size_t m) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const Morsel& morsel = morsels[m];
      std::vector<Binding>& out = outs[m];
      size_t visited = 0;
      for (size_t r = morsel.row_begin; r < morsel.row_end; ++r) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const Binding& row = rows[r];
        TermId s, p, o;
        typename StoreT::Range range;
        if (morsel.has_range) {
          s = morsel.s;
          p = morsel.p;
          o = morsel.o;
          range = morsel.range;
        } else {
          s = Resolve(cp.s, row);
          p = Resolve(cp.p, row);
          o = Resolve(cp.o, row);
          range = store_.Locate(s, p, o);
        }
        store_.MatchRange(range, s, p, o, [&](const rdf::Triple& t) {
          // Deadline poll: cheap enough every 256 triples that serving
          // deadlines bite mid-scan, not only between patterns.
          if ((++visited & 255u) == 0 && util::Cancelled()) {
            cancelled.store(true, std::memory_order_relaxed);
            return false;
          }
          Binding ext = row;
          if (CompiledTriple::IsSlot(cp.s)) {
            ext[CompiledTriple::Slot(cp.s)] = t.s;
          }
          if (CompiledTriple::IsSlot(cp.p)) {
            ext[CompiledTriple::Slot(cp.p)] = t.p;
          }
          if (CompiledTriple::IsSlot(cp.o)) {
            ext[CompiledTriple::Slot(cp.o)] = t.o;
          }
          out.push_back(std::move(ext));
          return out.size() < options_.max_rows;
        });
        if (out.size() >= options_.max_rows) break;
      }
    });
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("evaluation cancelled mid-scan");
    }

    // Ordered merge: morsel order is serial order; truncate at the global
    // cap exactly where the serial loop would have stopped.
    size_t total_rows = 0;
    for (const std::vector<Binding>& out : outs) total_rows += out.size();
    std::vector<Binding> next;
    next.reserve(std::min(total_rows, options_.max_rows));
    for (std::vector<Binding>& out : outs) {
      for (Binding& b : out) {
        next.push_back(std::move(b));
        if (next.size() >= options_.max_rows) break;
      }
      if (next.size() >= options_.max_rows) break;
    }
    ++sharded_steps_;
    morsel_count_ += morsels.size();
    if (span.recording()) {
      span.AddAttribute("morsels", std::to_string(morsels.size()));
      span.AddAttribute("rows_in", std::to_string(rows.size()));
      span.AddAttribute("rows_out", std::to_string(next.size()));
    }
    static obs::Histogram& step_ms = obs::MetricsRegistry::Global().GetHistogram(
        "sparql.eval.sharded_step_ms");
    step_ms.Record(span.ElapsedMillis());
    return next;
  }

  // ---- Vectorized (columnar) evaluation ----
  //
  // The vectorized path executes the same plan as the row path but carries
  // solutions as Chunks.  Each join step classifies the pattern components
  // against the input columns and picks one of three kernels, every one of
  // which emits in the serial (row, match-index) order with the serial
  // max_rows cap, so the output batch is byte-identical to the row path's
  // output rows:
  //  * broadcast — no varying component: all rows resolve the pattern
  //    identically, so the matches are scanned once and cross-joined.
  //  * hash — build over the constants-only range keyed by the varying
  //    components, probe per row; order-correct because a probe's match
  //    set differs in at most one (wildcard) component, and triples equal
  //    on every other component sort identically in all six permutations.
  //  * probe — the per-row Locate + scan fallback; always correct.

  // One execution context's batch accounting.  Kernels tick once per unit
  // of work (a scanned triple or an emitted row); every batch_size ticks
  // is a batch boundary: the optional testing latency is injected and the
  // serving deadline is re-checked, so cancellation bites mid-scan even
  // when one kernel invocation covers millions of triples.
  struct BatchState {
    size_t work = 0;
    size_t batches = 0;
  };

  // Returns false when the deadline expired at this boundary.
  bool TickBatch(BatchState* bs) const {
    if (++bs->work < options_.batch_size) return true;
    bs->work = 0;
    ++bs->batches;
    if (options_.testing_batch_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.testing_batch_delay_us));
    }
    return !util::Cancelled();
  }

  static CompKind Classify(uint64_t c, const Chunk& in) {
    if (!CompiledTriple::IsSlot(c)) return CompKind::kConst;
    const std::vector<TermId>& col = in.Col(CompiledTriple::Slot(c));
    bool null_seen = false;
    bool bound_seen = false;
    for (size_t r = 0; r < in.rows(); ++r) {
      (col[r] == kNullTermId ? null_seen : bound_seen) = true;
      if (null_seen && bound_seen) return CompKind::kMixed;
    }
    return bound_seen ? CompKind::kVarying : CompKind::kFree;
  }

  // VALUES / text overlay on a batch: rows with the slot already bound are
  // kept iff the value is in `ids`; unbound rows fan out over `ids` in
  // order.  Exactly the row path's loop (including its cap placement:
  // bound keeps are never dropped, fan-outs stop at max_rows), column-wise.
  Chunk OverlayBindChunk(const Chunk& chunk, size_t slot,
                         const std::vector<TermId>& ids) const {
    Chunk next(chunk.num_slots());
    for (size_t r = 0; r < chunk.rows(); ++r) {
      TermId v = chunk.At(r, slot);
      if (v != kNullTermId) {
        if (std::find(ids.begin(), ids.end(), v) != ids.end()) {
          next.AppendRow(chunk, r);
        }
        continue;
      }
      for (TermId id : ids) {
        next.AppendRowSet(chunk, r, slot, id);
        if (next.rows() >= options_.max_rows) break;
      }
      if (next.rows() >= options_.max_rows) break;
    }
    return next;
  }

  // Mirrors EvalGroup phase for phase; every cap and ordering decision is
  // the row path's, executed column-wise.
  StatusOr<Chunk> EvalGroupChunked(const GroupGraphPattern& group,
                                   Chunk chunk) {
    for (const TextPattern& tp : group.text_patterns) {
      KGQAN_ASSIGN_OR_RETURN(text::ContainsQuery cq,
                             text::ParseContainsQuery(tp.expr));
      std::vector<TermId> candidates =
          text_index_.MatchLiterals(cq, options_.text_candidate_limit);
      chunk = OverlayBindChunk(chunk, slots_.SlotOf(tp.var.name), candidates);
    }
    for (const InlineValues& iv : group.values) {
      std::vector<TermId> ids;
      ids.reserve(iv.values.size());
      for (const Term& t : iv.values) ids.push_back(InternValue(t));
      chunk = OverlayBindChunk(chunk, slots_.SlotOf(iv.var.name), ids);
    }

    std::vector<CompiledTriple> patterns = CompileTriples(group);
    JoinPlan plan = PlanJoins(store_, patterns, BoundSlots(chunk));
    NotePlan(patterns.size(), plan);
    size_t order = 0;
    for (const PlanStep& step : plan.steps) {
      const CompiledTriple& cp = patterns[step.pattern];
      Chunk next(chunk.num_slots());
      if (!cp.dead) {
        KGQAN_ASSIGN_OR_RETURN(next,
                               VectorizedJoinStep(cp, step, order, chunk));
      }
      chunk = std::move(next);
      ++order;
      if (chunk.rows() == 0) break;
    }

    for (const auto& branches : group.unions) {
      Chunk next(chunk.num_slots());
      for (const GroupGraphPattern& branch : branches) {
        auto matched = EvalGroupChunked(branch, chunk);
        if (!matched.ok()) return matched.status();
        next.AppendChunkCapped(*matched, options_.max_rows);
        if (next.rows() >= options_.max_rows) break;
      }
      chunk = std::move(next);
    }

    for (const GroupGraphPattern& opt : group.optionals) {
      Chunk next(chunk.num_slots());
      for (size_t r = 0; r < chunk.rows(); ++r) {
        Chunk seed(chunk.num_slots());
        seed.AppendRow(chunk, r);
        auto matched = EvalGroupChunked(opt, std::move(seed));
        if (!matched.ok()) return matched.status();
        if (matched->rows() == 0) {
          next.AppendRow(chunk, r);
        } else {
          next.AppendChunkCapped(*matched, options_.max_rows);
        }
        if (next.rows() >= options_.max_rows) break;
      }
      chunk = std::move(next);
    }

    for (const Expr& filter : group.filters) {
      Chunk next(chunk.num_slots());
      for (size_t r = 0; r < chunk.rows(); ++r) {
        if (EvalExprBool(filter, ChunkRow{&chunk, r})) {
          next.AppendRow(chunk, r);
        }
      }
      chunk = std::move(next);
    }
    return chunk;
  }

  StatusOr<Chunk> VectorizedJoinStep(const CompiledTriple& cp,
                                     const PlanStep& step, size_t order,
                                     const Chunk& in) {
    Chunk out(in.num_slots());
    if (cp.dead || in.rows() == 0) return out;
    obs::ScopedSpan span("sparql.eval.batch_step");
    ++vectorized_steps_;
    const size_t batches_before = batches_;

    // src[slot]: where the output column's value comes from (0 = the input
    // column, 1/2/3 = the matched triple's s/p/o); written in s,p,o order
    // so repeated variables keep last-write-wins.
    std::vector<uint8_t> src(in.num_slots(), 0);
    if (CompiledTriple::IsSlot(cp.s)) src[CompiledTriple::Slot(cp.s)] = 1;
    if (CompiledTriple::IsSlot(cp.p)) src[CompiledTriple::Slot(cp.p)] = 2;
    if (CompiledTriple::IsSlot(cp.o)) src[CompiledTriple::Slot(cp.o)] = 3;

    const CompKind ks = Classify(cp.s, in);
    const CompKind kp = Classify(cp.p, in);
    const CompKind ko = Classify(cp.o, in);
    const bool mixed = ks == CompKind::kMixed || kp == CompKind::kMixed ||
                       ko == CompKind::kMixed;
    const size_t varying = size_t(ks == CompKind::kVarying) +
                           size_t(kp == CompKind::kVarying) +
                           size_t(ko == CompKind::kVarying);
    const size_t wildcards = size_t(ks == CompKind::kFree) +
                             size_t(kp == CompKind::kFree) +
                             size_t(ko == CompKind::kFree);

    const char* kernel = "probe";
    Status status;
    if (!mixed && varying == 0) {
      kernel = "broadcast";
      status = BroadcastKernel(cp, in, src, &out);
    } else {
      bool hashed = false;
      // Hash eligibility: every key fits one uint64 (≤ 2 varying 32-bit
      // components), order stays serial (≤ 1 wildcard component), and the
      // build is worth it (enough probes, bounded build range).
      if (!mixed && varying <= 2 && wildcards <= 1 && in.rows() >= 8) {
        auto build_comp = [](uint64_t c, CompKind k) {
          return k == CompKind::kConst ? static_cast<TermId>(c) : kNullTermId;
        };
        typename StoreT::Range range =
            store_.Locate(build_comp(cp.s, ks), build_comp(cp.p, kp),
                          build_comp(cp.o, ko));
        // The build touches every range triple once (hashing + per-key
        // vector growth) to save one Locate binary search per probe row,
        // so it only pays off while the range is a small multiple of the
        // probe count; past that, per-row probing is strictly cheaper.
        if (range.size() <= 4 * in.rows()) {
          kernel = "hash";
          status = HashKernel(cp, in, src, range, ks, kp, ko, &out);
          hashed = true;
        }
      }
      if (!hashed) status = ProbeKernel(cp, in, src, &out);
    }
    KGQAN_RETURN_IF_ERROR(status);
    if (analyze_) {
      NoteStep(step, order, in.rows(), out.rows(),
               batches_ - batches_before, /*morsels=*/0, kernel, &span);
    }
    static obs::Histogram& step_ms =
        obs::MetricsRegistry::Global().GetHistogram(
            "sparql.eval.batch.step_ms");
    step_ms.Record(span.ElapsedMillis());
    return out;
  }

  // Shards `exec` over contiguous row morsels of `in` on the eval pool and
  // merges the per-morsel outputs in order, truncating at max_rows (the
  // PR-5 merge argument: a morsel's share of the serial first-max_rows
  // prefix is never more than max_rows rows).  `exec(begin, end, dst, bs)`
  // must emit in serial (row, index) order, cap `dst` at max_rows, and
  // return false only on deadline expiry.  Small inputs run inline.
  template <typename ExecFn>
  Status ShardRows(const Chunk& in, Chunk* out, ExecFn&& exec) {
    const size_t threads = options_.intra_query_threads;
    const bool shard = threads > 1 && options_.eval_pool != nullptr &&
                       in.rows() > std::max<size_t>(64, threads * 8);
    if (!shard) {
      BatchState bs;
      bool alive = exec(0, in.rows(), out, &bs);
      batches_ += bs.batches;
      if (!alive) {
        return Status::DeadlineExceeded("evaluation cancelled mid-batch");
      }
      return Status::Ok();
    }
    const size_t k = std::min(in.rows(), threads * 4);
    std::vector<Chunk> outs(k, Chunk(in.num_slots()));
    std::vector<size_t> morsel_batches(k, 0);
    std::atomic<bool> cancelled{false};
    util::ParallelFor(options_.eval_pool, k, [&](size_t i) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      BatchState local;
      bool alive =
          exec(in.rows() * i / k, in.rows() * (i + 1) / k, &outs[i], &local);
      morsel_batches[i] = local.batches;
      if (!alive) cancelled.store(true, std::memory_order_relaxed);
    });
    for (size_t b : morsel_batches) batches_ += b;
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("evaluation cancelled mid-batch");
    }
    for (const Chunk& part : outs) {
      out->AppendChunkCapped(part, options_.max_rows);
    }
    return Status::Ok();
  }

  // No varying component: every input row resolves the pattern to the same
  // constants-plus-wildcards lookup (the seed row of a fresh group always
  // lands here), so the matches are scanned exactly once — optionally in
  // parallel range slices — and cross-joined row-major.
  Status BroadcastKernel(const CompiledTriple& cp, const Chunk& in,
                         const std::vector<uint8_t>& src, Chunk* out) {
    auto comp = [](uint64_t c) {
      return CompiledTriple::IsSlot(c) ? kNullTermId : static_cast<TermId>(c);
    };
    const TermId s = comp(cp.s);
    const TermId p = comp(cp.p);
    const TermId o = comp(cp.o);
    const size_t cap = options_.max_rows;
    typename StoreT::Range range = store_.Locate(s, p, o);
    std::vector<rdf::Triple> matches;
    matches.reserve(std::min(range.size(), cap));

    const size_t threads = options_.intra_query_threads;
    std::vector<typename StoreT::Range> slices;
    if (threads > 1 && options_.eval_pool != nullptr &&
        range.size() >= options_.min_shard_work) {
      size_t slice = std::max<size_t>({size_t{1}, options_.min_morsel_triples,
                                       range.size() / (threads * 4)});
      slices = store_.Partition(range, (range.size() + slice - 1) / slice);
    }
    if (slices.size() > 1) {
      // Parallel scan: contiguous slices merged in order are the serial
      // match sequence; truncate at the cap like the serial scan would.
      std::vector<std::vector<rdf::Triple>> parts(slices.size());
      std::vector<size_t> slice_batches(slices.size(), 0);
      std::atomic<bool> cancelled{false};
      util::ParallelFor(options_.eval_pool, slices.size(), [&](size_t i) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        BatchState local;
        store_.MatchRange(slices[i], s, p, o, [&](const rdf::Triple& t) {
          if (!TickBatch(&local)) {
            cancelled.store(true, std::memory_order_relaxed);
            return false;
          }
          parts[i].push_back(t);
          return parts[i].size() < cap;
        });
        slice_batches[i] = local.batches;
      });
      for (size_t b : slice_batches) batches_ += b;
      if (cancelled.load(std::memory_order_relaxed)) {
        return Status::DeadlineExceeded("evaluation cancelled mid-batch");
      }
      for (const std::vector<rdf::Triple>& part : parts) {
        for (const rdf::Triple& t : part) {
          if (matches.size() >= cap) break;
          matches.push_back(t);
        }
        if (matches.size() >= cap) break;
      }
    } else {
      BatchState bs;
      bool expired = false;
      store_.MatchRange(range, s, p, o, [&](const rdf::Triple& t) {
        if (!TickBatch(&bs)) {
          expired = true;
          return false;
        }
        matches.push_back(t);
        return matches.size() < cap;
      });
      batches_ += bs.batches;
      if (expired) {
        return Status::DeadlineExceeded("evaluation cancelled mid-batch");
      }
    }

    // Row-major cross join: row r first, then match order — the serial
    // (row, index) emission order, capped exactly where serial stops.
    BatchState bs;
    out->Reserve(std::min(cap, in.rows() * matches.size()));
    for (size_t r = 0; r < in.rows(); ++r) {
      for (const rdf::Triple& t : matches) {
        if (!TickBatch(&bs)) {
          batches_ += bs.batches;
          return Status::DeadlineExceeded("evaluation cancelled mid-batch");
        }
        out->AppendJoinRow(in, r, t, src);
        if (out->rows() >= cap) break;
      }
      if (out->rows() >= cap) break;
    }
    batches_ += bs.batches;
    return Status::Ok();
  }

  // ≥ 1 varying component: build a hash table over the constants-only
  // range once, grouping triples by their varying components in index
  // order, then probe per input row.  A group's order is the per-row scan
  // order in *any* permutation, because its triples agree on every
  // component except the (at most one) wildcard.
  Status HashKernel(const CompiledTriple& cp, const Chunk& in,
                    const std::vector<uint8_t>& src,
                    const typename StoreT::Range& build_range, CompKind ks,
                    CompKind kp, CompKind ko, Chunk* out) {
    auto build_comp = [](uint64_t c, CompKind k) {
      return k == CompKind::kConst ? static_cast<TermId>(c) : kNullTermId;
    };
    const TermId s = build_comp(cp.s, ks);
    const TermId p = build_comp(cp.p, kp);
    const TermId o = build_comp(cp.o, ko);
    std::unordered_map<uint64_t, std::vector<rdf::Triple>> table;
    {
      BatchState bs;
      bool expired = false;
      store_.MatchRange(build_range, s, p, o, [&](const rdf::Triple& t) {
        if (!TickBatch(&bs)) {
          expired = true;
          return false;
        }
        uint64_t key = 0;
        if (ks == CompKind::kVarying) key = t.s;
        if (kp == CompKind::kVarying) key = (key << 32) | t.p;
        if (ko == CompKind::kVarying) key = (key << 32) | t.o;
        table[key].push_back(t);
        return true;
      });
      batches_ += bs.batches;
      if (expired) {
        return Status::DeadlineExceeded("evaluation cancelled mid-batch");
      }
    }
    const size_t cap = options_.max_rows;
    auto exec = [&](size_t begin, size_t end, Chunk* dst, BatchState* bs) {
      for (size_t r = begin; r < end; ++r) {
        uint64_t key = 0;
        if (ks == CompKind::kVarying) {
          key = in.At(r, CompiledTriple::Slot(cp.s));
        }
        if (kp == CompKind::kVarying) {
          key = (key << 32) | in.At(r, CompiledTriple::Slot(cp.p));
        }
        if (ko == CompKind::kVarying) {
          key = (key << 32) | in.At(r, CompiledTriple::Slot(cp.o));
        }
        auto it = table.find(key);
        if (it == table.end()) continue;
        for (const rdf::Triple& t : it->second) {
          if (!TickBatch(bs)) return false;
          dst->AppendJoinRow(in, r, t, src);
          if (dst->rows() >= cap) break;
        }
        if (dst->rows() >= cap) break;
      }
      return true;
    };
    return ShardRows(in, out, exec);
  }

  // The per-row fallback: Locate + scan for each input row, exactly the
  // serial join step's store access pattern, emitting into columns.
  Status ProbeKernel(const CompiledTriple& cp, const Chunk& in,
                     const std::vector<uint8_t>& src, Chunk* out) {
    const size_t cap = options_.max_rows;
    auto exec = [&](size_t begin, size_t end, Chunk* dst, BatchState* bs) {
      for (size_t r = begin; r < end; ++r) {
        TermId s = ResolveChunk(cp.s, in, r);
        TermId p = ResolveChunk(cp.p, in, r);
        TermId o = ResolveChunk(cp.o, in, r);
        bool expired = false;
        store_.Match(s, p, o, [&](const rdf::Triple& t) {
          if (!TickBatch(bs)) {
            expired = true;
            return false;
          }
          dst->AppendJoinRow(in, r, t, src);
          return dst->rows() < cap;
        });
        if (expired) return false;
        if (dst->rows() >= cap) break;
      }
      return true;
    };
    return ShardRows(in, out, exec);
  }

 public:
  // Number of join steps that actually ran sharded / total morsels they
  // spawned (for the sparql.eval.* registry metrics; 0 on the serial path),
  // plus the vectorized path's step/batch-boundary counts and the planner's
  // multi-pattern group counts.
  size_t sharded_steps() const { return sharded_steps_; }
  size_t morsels() const { return morsel_count_; }
  size_t vectorized_steps() const { return vectorized_steps_; }
  size_t batches() const { return batches_; }
  size_t planned_groups() const { return planned_groups_; }
  size_t reordered_plans() const { return reordered_plans_; }

 private:
  // ---- FILTER expression evaluation ----
  //
  // Templated over the row representation (Binding or ChunkRow) so the
  // row and vectorized paths share one implementation.

  // Three-valued-lite: comparisons involving unbound vars are false.
  template <typename RowT>
  bool EvalExprBool(const Expr& e, const RowT& b) const {
    switch (e.op) {
      case ExprOp::kAnd:
        return EvalExprBool(*e.lhs, b) && EvalExprBool(*e.rhs, b);
      case ExprOp::kOr:
        return EvalExprBool(*e.lhs, b) || EvalExprBool(*e.rhs, b);
      case ExprOp::kNot:
        return !EvalExprBool(*e.lhs, b);
      case ExprOp::kBound: {
        auto slot = slots_.Find(e.var.name);
        return slot.has_value() && b[*slot] != kNullTermId;
      }
      case ExprOp::kEq:
      case ExprOp::kNe:
      case ExprOp::kLt:
      case ExprOp::kLe:
      case ExprOp::kGt:
      case ExprOp::kGe:
        return EvalComparison(e, b);
      case ExprOp::kVar: {
        auto slot = slots_.Find(e.var.name);
        if (!slot.has_value() || b[*slot] == kNullTermId) return false;
        return TermOf(b[*slot]).value == "true";
      }
      case ExprOp::kConstant:
        return e.constant.value == "true";
      case ExprOp::kRegex: {
        std::optional<Term> subject = EvalOperand(*e.lhs, b);
        std::optional<Term> pattern = EvalOperand(*e.rhs, b);
        if (!subject.has_value() || !pattern.has_value()) return false;
        // Construction failures (bad patterns) evaluate to false rather
        // than erroring, matching FILTER error semantics.
        std::regex re;
        if (auto status = CompileRegex(pattern->value, &re); !status) {
          return false;
        }
        return std::regex_search(subject->value, re);
      }
      case ExprOp::kContains: {
        std::optional<Term> hay = EvalOperand(*e.lhs, b);
        std::optional<Term> needle = EvalOperand(*e.rhs, b);
        if (!hay.has_value() || !needle.has_value()) return false;
        return hay->value.find(needle->value) != std::string::npos;
      }
      case ExprOp::kIsIri: {
        std::optional<Term> t = EvalOperand(*e.lhs, b);
        return t.has_value() && t->IsIri();
      }
      case ExprOp::kIsLiteral: {
        std::optional<Term> t = EvalOperand(*e.lhs, b);
        return t.has_value() && t->IsLiteral();
      }
      case ExprOp::kStr:
      case ExprOp::kLang: {
        std::optional<Term> t = EvalOperand(e, b);
        return t.has_value() && !t->value.empty();
      }
    }
    return false;
  }

  static bool CompileRegex(const std::string& pattern, std::regex* out) {
    try {
      *out = std::regex(pattern, std::regex::ECMAScript);
      return true;
    } catch (const std::regex_error&) {
      return false;
    }
  }

  template <typename RowT>
  std::optional<Term> EvalOperand(const Expr& e, const RowT& b) const {
    if (e.op == ExprOp::kConstant) return e.constant;
    if (e.op == ExprOp::kVar) {
      auto slot = slots_.Find(e.var.name);
      if (!slot.has_value() || b[*slot] == kNullTermId) return std::nullopt;
      return TermOf(b[*slot]);
    }
    if (e.op == ExprOp::kStr) {
      std::optional<Term> inner = EvalOperand(*e.lhs, b);
      if (!inner.has_value()) return std::nullopt;
      return rdf::StringLiteral(inner->value);
    }
    if (e.op == ExprOp::kLang) {
      std::optional<Term> inner = EvalOperand(*e.lhs, b);
      if (!inner.has_value() || !inner->IsLiteral()) return std::nullopt;
      return rdf::StringLiteral(inner->lang);
    }
    return std::nullopt;
  }

  static bool IsNumeric(const Term& t, double* out) {
    if (!t.IsLiteral()) return false;
    const char* begin = t.value.c_str();
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0') return false;
    *out = v;
    return true;
  }

  template <typename RowT>
  bool EvalComparison(const Expr& e, const RowT& b) const {
    std::optional<Term> lhs = EvalOperand(*e.lhs, b);
    std::optional<Term> rhs = EvalOperand(*e.rhs, b);
    if (!lhs.has_value() || !rhs.has_value()) return false;
    int cmp;
    double lv, rv;
    if (IsNumeric(*lhs, &lv) && IsNumeric(*rhs, &rv)) {
      cmp = lv < rv ? -1 : (lv > rv ? 1 : 0);
    } else {
      cmp = lhs->value.compare(rhs->value);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      // Equality additionally requires the same kind for non-numeric terms.
      if (cmp == 0 && lhs->kind != rhs->kind) cmp = 1;
    }
    switch (e.op) {
      case ExprOp::kEq:
        return cmp == 0;
      case ExprOp::kNe:
        return cmp != 0;
      case ExprOp::kLt:
        return cmp < 0;
      case ExprOp::kLe:
        return cmp <= 0;
      case ExprOp::kGt:
        return cmp > 0;
      case ExprOp::kGe:
        return cmp >= 0;
      default:
        return false;
    }
  }

  // ---- Projection ----

  // The aggregate proper, over the already-collected operand values (in
  // row order, distinct already applied).  Shared by the row path and the
  // columnar path, which differ only in how they gather the values.
  Term AggregateFromValues(const Aggregate& agg,
                           const std::vector<TermId>& values) const {
    switch (agg.op) {
      case Aggregate::Op::kCount:
        return rdf::IntLiteral(static_cast<int64_t>(values.size()));
      case Aggregate::Op::kMin:
      case Aggregate::Op::kMax: {
        std::optional<TermId> best;
        std::optional<double> best_num;
        for (TermId id : values) {
          const Term& t = TermOf(id);
          double v;
          bool numeric = IsNumeric(t, &v);
          if (!best.has_value()) {
            best = id;
            if (numeric) best_num = v;
            continue;
          }
          bool better;
          if (numeric && best_num.has_value()) {
            better = agg.op == Aggregate::Op::kMin ? v < *best_num
                                                   : v > *best_num;
          } else {
            const Term& bt = TermOf(*best);
            better = agg.op == Aggregate::Op::kMin ? t.value < bt.value
                                                   : t.value > bt.value;
          }
          if (better) {
            best = id;
            best_num = numeric ? std::optional<double>(v) : std::nullopt;
          }
        }
        if (!best.has_value()) return rdf::IntLiteral(0);
        return TermOf(*best);
      }
      case Aggregate::Op::kSum:
      case Aggregate::Op::kAvg: {
        double sum = 0.0;
        size_t n = 0;
        bool integral = true;
        for (TermId id : values) {
          const Term& t = TermOf(id);
          double v;
          if (!IsNumeric(t, &v)) continue;
          if (t.datatype != rdf::vocab::kXsdInteger) integral = false;
          sum += v;
          ++n;
        }
        if (agg.op == Aggregate::Op::kAvg) {
          return rdf::DoubleLiteral(n == 0 ? 0.0 : sum / double(n));
        }
        if (integral) return rdf::IntLiteral(static_cast<int64_t>(sum));
        return rdf::DoubleLiteral(sum);
      }
    }
    return rdf::IntLiteral(0);
  }

  // Evaluates one aggregate over the solution rows.
  Term EvalAggregate(const Aggregate& agg,
                     const std::vector<Binding>& rows) const {
    auto slot = slots_.Find(agg.var.name);
    std::vector<TermId> values;
    if (slot.has_value()) {
      std::unordered_set<TermId> seen;
      for (const Binding& b : rows) {
        if (b[*slot] == kNullTermId) continue;
        if (agg.distinct && !seen.insert(b[*slot]).second) continue;
        values.push_back(b[*slot]);
      }
    }
    return AggregateFromValues(agg, values);
  }

  // Columnar variant: reads the slot's column directly — no row
  // materialization for aggregate-only queries.
  Term EvalAggregateChunk(const Aggregate& agg, const Chunk& chunk) const {
    auto slot = slots_.Find(agg.var.name);
    std::vector<TermId> values;
    if (slot.has_value()) {
      const std::vector<TermId>& col = chunk.Col(*slot);
      std::unordered_set<TermId> seen;
      for (size_t r = 0; r < chunk.rows(); ++r) {
        if (col[r] == kNullTermId) continue;
        if (agg.distinct && !seen.insert(col[r]).second) continue;
        values.push_back(col[r]);
      }
    }
    return AggregateFromValues(agg, values);
  }

  StatusOr<ResultSet> Project(const Query& query,
                              std::vector<Binding> rows) {
    // Aggregates: single-row result over the whole solution set.
    if (!query.aggregates.empty()) {
      std::vector<std::string> cols;
      Row out_row;
      for (const Aggregate& agg : query.aggregates) {
        cols.push_back(agg.alias.name);
        out_row.push_back(EvalAggregate(agg, rows));
      }
      ResultSet rs(std::move(cols));
      rs.AddRow(std::move(out_row));
      return rs;
    }

    // ORDER BY: sort the solution rows before projection.
    if (!query.order_by.empty()) {
      std::vector<std::pair<size_t, bool>> keys;  // (slot, descending)
      for (const OrderKey& key : query.order_by) {
        auto slot = slots_.Find(key.var.name);
        if (slot.has_value()) keys.emplace_back(*slot, key.descending);
      }
      auto term_less = [&](TermId a, TermId b) {
        // Unbound sorts first; numbers numerically; everything else by
        // lexical form.
        if (a == b) return false;
        if (a == kNullTermId) return true;
        if (b == kNullTermId) return false;
        const Term& ta = TermOf(a);
        const Term& tb = TermOf(b);
        double va, vb;
        if (IsNumeric(ta, &va) && IsNumeric(tb, &vb)) {
          if (va != vb) return va < vb;
        }
        return ta.value < tb.value;
      };
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Binding& a, const Binding& b) {
                         for (const auto& [slot, desc] : keys) {
                           if (a[slot] == b[slot]) continue;
                           bool less = term_less(a[slot], b[slot]);
                           return desc ? !less : less;
                         }
                         return false;
                       });
    }

    // Column list.
    std::vector<std::string> cols;
    std::vector<size_t> col_slots;
    if (query.select_all) {
      // All pattern variables in first-appearance order (SlotMap does not
      // keep reverse order; re-derive names by walking the group in the
      // same order CollectVars did).
      std::vector<std::string> names;
      CollectVarNames(query.where, &names);
      for (const std::string& name : names) {
        cols.push_back(name);
        col_slots.push_back(*slots_.Find(name));
      }
    } else {
      for (const Var& v : query.select_vars) {
        cols.push_back(v.name);
        col_slots.push_back(slots_.SlotOf(v.name));
      }
    }

    ResultSet rs(cols);
    std::set<std::vector<TermId>> seen;
    size_t skipped = 0;
    for (const Binding& b : rows) {
      std::vector<TermId> key;
      key.reserve(col_slots.size());
      for (size_t slot : col_slots) key.push_back(b[slot]);
      if (query.distinct) {
        if (!seen.insert(key).second) continue;
      }
      if (skipped < query.offset) {
        ++skipped;
        continue;
      }
      Row row;
      row.reserve(col_slots.size());
      for (TermId id : key) {
        if (id == kNullTermId) {
          row.push_back(std::nullopt);
        } else {
          row.push_back(TermOf(id));
        }
      }
      rs.AddRow(std::move(row));
      if (query.limit > 0 && rs.NumRows() >= query.limit) break;
    }
    return rs;
  }

  // Vectorized projection: aggregates stay columnar; everything else
  // (ORDER BY, DISTINCT, OFFSET/LIMIT) materializes rows once at the very
  // end and reuses the row projection verbatim.
  StatusOr<ResultSet> ProjectChunk(const Query& query, Chunk chunk) {
    if (!query.aggregates.empty()) {
      std::vector<std::string> cols;
      Row out_row;
      for (const Aggregate& agg : query.aggregates) {
        cols.push_back(agg.alias.name);
        out_row.push_back(EvalAggregateChunk(agg, chunk));
      }
      ResultSet rs(std::move(cols));
      rs.AddRow(std::move(out_row));
      return rs;
    }
    std::vector<Binding> rows;
    rows.reserve(chunk.rows());
    for (size_t r = 0; r < chunk.rows(); ++r) {
      rows.push_back(chunk.ToBinding(r));
    }
    return Project(query, std::move(rows));
  }

  // Collects variable names in first-appearance order (matches SlotMap
  // insertion order for the same traversal).
  static void CollectVarNames(const GroupGraphPattern& group,
                              std::vector<std::string>* names) {
    auto visit = [&](const TermOrVar& tv) {
      if (IsVar(tv)) {
        const std::string& n = AsVar(tv).name;
        if (std::find(names->begin(), names->end(), n) == names->end()) {
          names->push_back(n);
        }
      }
    };
    for (const TriplePattern& tp : group.triples) {
      visit(tp.s);
      visit(tp.p);
      visit(tp.o);
    }
    auto visit_var = [&](const Var& v) {
      if (std::find(names->begin(), names->end(), v.name) == names->end()) {
        names->push_back(v.name);
      }
    };
    for (const TextPattern& tp : group.text_patterns) {
      visit_var(tp.var);
    }
    for (const InlineValues& iv : group.values) {
      visit_var(iv.var);
    }
    for (const GroupGraphPattern& opt : group.optionals) {
      CollectVarNames(opt, names);
    }
    for (const auto& branches : group.unions) {
      for (const GroupGraphPattern& branch : branches) {
        CollectVarNames(branch, names);
      }
    }
  }

  const StoreT& store_;
  const TextT& text_index_;
  const EvalOptions& options_;
  SlotMap slots_;
  // Query-local dictionary overlay for VALUES terms absent from the store
  // (their ids live above dictionary().MaxId(); see InternValue/TermOf).
  std::vector<Term> overlay_terms_;
  std::unordered_map<std::string, TermId> overlay_ids_;
  size_t sharded_steps_ = 0;
  size_t morsel_count_ = 0;
  size_t vectorized_steps_ = 0;
  size_t batches_ = 0;
  size_t planned_groups_ = 0;
  size_t reordered_plans_ = 0;
  // EXPLAIN ANALYZE: the calling thread's operator-stats sink (owned by
  // the engine) and the once-per-query analyze decision.  Only the
  // coordinator thread touches profile_ — the step loops never run on
  // morsel workers.
  EvalProfile* profile_ = nullptr;
  bool analyze_ = false;
};

// One evaluation, generic over the backend.  Both public overloads land
// here; the registry counters resolve to the same entries either way, so
// sharded and unsharded endpoints share one metric namespace.
template <typename StoreT, typename TextT>
StatusOr<ResultSet> EvaluateImpl(const Query& query, const StoreT& store,
                                 const TextT& text_index,
                                 const EvalOptions& options) {
  // Registry instrumentation: evaluation volume and result-set sizes
  // (bucket bounds are row counts, not latencies).
  static obs::Counter& evaluations =
      obs::MetricsRegistry::Global().GetCounter("sparql.evaluator.evaluations");
  static obs::Histogram& result_rows =
      obs::MetricsRegistry::Global().GetHistogram(
          "sparql.evaluator.result_rows",
          {0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0});
  evaluations.Add(1);
  Evaluator<StoreT, TextT> evaluator(store, text_index, options);
  StatusOr<ResultSet> result = evaluator.Run(query);
  if (result.ok() && !result->is_ask()) {
    result_rows.Record(double(result->NumRows()));
  }
  if (evaluator.planned_groups() > 0) {
    // Join-planner instrumentation, multi-pattern groups only: the
    // single-pattern linking probes keep their pre-existing metric set.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static obs::Counter& plan_groups =
        registry.GetCounter("sparql.plan.groups");
    static obs::Counter& plan_reordered =
        registry.GetCounter("sparql.plan.reordered");
    plan_groups.Add(evaluator.planned_groups());
    if (evaluator.reordered_plans() > 0) {
      plan_reordered.Add(evaluator.reordered_plans());
    }
  }
  if (evaluator.sharded_steps() > 0) {
    // Sharded-path-only instrumentation: the serial path must not touch
    // the registry beyond the pre-existing counters and the plan counters
    // above.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static obs::Counter& sharded_queries =
        registry.GetCounter("sparql.eval.sharded_queries");
    static obs::Counter& sharded_steps =
        registry.GetCounter("sparql.eval.sharded_steps");
    static obs::Counter& morsels = registry.GetCounter("sparql.eval.morsels");
    sharded_queries.Add(1);
    sharded_steps.Add(evaluator.sharded_steps());
    morsels.Add(evaluator.morsels());
    if (obs::Trace* trace = obs::CurrentTrace()) {
      trace->AddCounter(obs::TraceCounter::kEvalMorsels,
                        evaluator.morsels());
    }
  }
  if (evaluator.vectorized_steps() > 0) {
    // Vectorized-path-only instrumentation (the path is opt-in).
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static obs::Counter& vec_queries =
        registry.GetCounter("sparql.eval.batch.queries");
    static obs::Counter& vec_steps =
        registry.GetCounter("sparql.eval.batch.steps");
    static obs::Counter& vec_batches =
        registry.GetCounter("sparql.eval.batch.batches");
    vec_queries.Add(1);
    vec_steps.Add(evaluator.vectorized_steps());
    vec_batches.Add(evaluator.batches());
    if (obs::Trace* trace = obs::CurrentTrace()) {
      trace->AddCounter(obs::TraceCounter::kEvalBatches,
                        evaluator.batches());
    }
  }
  return result;
}

}  // namespace

StatusOr<ResultSet> Evaluate(const Query& query,
                             const store::TripleStore& store,
                             const text::TextIndex& text_index,
                             const EvalOptions& options) {
  return EvaluateImpl(query, store, text_index, options);
}

StatusOr<ResultSet> Evaluate(const Query& query,
                             const store::ShardedStore& store,
                             const text::ShardedTextIndex& text_index,
                             const EvalOptions& options) {
  return EvaluateImpl(query, store, text_index, options);
}

StatusOr<ResultSet> Evaluate(const Query& query,
                             const store::CompactStore& store,
                             const text::TextIndex& text_index,
                             const EvalOptions& options) {
  return EvaluateImpl(query, store, text_index, options);
}

}  // namespace kgqan::sparql
