#include "sparql/lexer.h"

#include <array>
#include <cctype>

#include "util/string_util.h"

namespace kgqan::sparql {

namespace {

using util::Status;
using util::StatusOr;

bool IsNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '_' || c == '-';
}

bool IsKeyword(std::string_view upper) {
  static constexpr std::array<std::string_view, 26> kKeywords = {
      "SELECT", "ASK",    "WHERE",  "DISTINCT", "OPTIONAL", "FILTER",
      "LIMIT",  "PREFIX", "COUNT",  "AS",       "BOUND",    "UNION",
      "ORDER",  "BY",     "ASC",    "DESC",     "OFFSET",   "MIN",
      "MAX",    "SUM",    "AVG",    "REGEX",    "CONTAINS", "STR",
      "LANG",   "VALUES"};
  for (std::string_view k : kKeywords) {
    if (k == upper) return true;
  }
  // isIRI / isLITERAL (case-insensitive).
  return upper == "ISIRI" || upper == "ISLITERAL";
}

}  // namespace

StatusOr<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(i));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // Comment to end of line.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (c == '<') {
      // '<' is both the IRI opener and the less-than operator.  It is an
      // IRI iff a '>' appears before any whitespace.
      size_t end = i + 1;
      while (end < n && input[end] != '>' &&
             !std::isspace(static_cast<unsigned char>(input[end]))) {
        ++end;
      }
      if (end < n && input[end] == '>') {
        tokens.push_back({TokenKind::kIriRef,
                          std::string(input.substr(i + 1, end - i - 1)),
                          start});
        i = end + 1;
        continue;
      }
      // Fall through to operator handling below.
    }
    if (c == '?' || c == '$') {
      ++i;
      size_t vs = i;
      while (i < n && IsNameChar(input[i])) ++i;
      if (i == vs) return error("empty variable name");
      tokens.push_back(
          {TokenKind::kVar, std::string(input.substr(vs, i - vs)), start});
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        char d = input[i];
        if (d == '\\' && i + 1 < n) {
          char esc = input[i + 1];
          switch (esc) {
            case 'n':
              text += '\n';
              break;
            case 't':
              text += '\t';
              break;
            case 'r':
              text += '\r';
              break;
            default:
              text += esc;
          }
          i += 2;
          continue;
        }
        if (d == quote) {
          closed = true;
          ++i;
          break;
        }
        text += d;
        ++i;
      }
      if (!closed) return error("unterminated string");
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    if (c == '@') {
      ++i;
      size_t ls = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '-')) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kLangTag, std::string(input.substr(ls, i - ls)), start});
      continue;
    }
    if (c == '^') {
      if (i + 1 < n && input[i + 1] == '^') {
        tokens.push_back({TokenKind::kDtSep, "^^", start});
        i += 2;
        continue;
      }
      return error("stray '^'");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t ns = i;
      if (c == '-') ++i;
      bool decimal = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        // A '.' followed by a non-digit terminates the number (it is the
        // triple terminator).
        if (input[i] == '.') {
          if (i + 1 >= n ||
              !std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            break;
          }
          decimal = true;
        }
        ++i;
      }
      tokens.push_back({decimal ? TokenKind::kDecimal : TokenKind::kInteger,
                        std::string(input.substr(ns, i - ns)), start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t ws = i;
      while (i < n && IsNameChar(input[i])) ++i;
      std::string word(input.substr(ws, i - ws));
      // prefix:local ?
      if (i < n && input[i] == ':') {
        ++i;
        size_t ls = i;
        while (i < n && (IsNameChar(input[i]) || input[i] == '/' ||
                         input[i] == '.')) {
          ++i;
        }
        // A trailing '.' is the triple terminator, not part of the name.
        while (i > ls && input[i - 1] == '.') --i;
        tokens.push_back({TokenKind::kPname,
                          word + ":" + std::string(input.substr(ls, i - ls)),
                          start});
        continue;
      }
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (IsKeyword(upper)) {
        tokens.push_back({TokenKind::kKeyword, upper, start});
      } else if (upper == "TRUE" || upper == "FALSE") {
        tokens.push_back({TokenKind::kBoolean,
                          upper == "TRUE" ? "true" : "false", start});
      } else {
        // Bare word: treat as a pname with empty prefix is not valid; error.
        return error("unexpected word '" + word + "'");
      }
      continue;
    }
    // Operators and punctuation.
    if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      tokens.push_back({TokenKind::kOp, "!=", start});
      i += 2;
      continue;
    }
    if ((c == '<' || c == '>') && i + 1 < n && input[i + 1] == '=') {
      tokens.push_back({TokenKind::kOp, std::string(1, c) + "=", start});
      i += 2;
      continue;
    }
    if (c == '&' && i + 1 < n && input[i + 1] == '&') {
      tokens.push_back({TokenKind::kOp, "&&", start});
      i += 2;
      continue;
    }
    if (c == '|' && i + 1 < n && input[i + 1] == '|') {
      tokens.push_back({TokenKind::kOp, "||", start});
      i += 2;
      continue;
    }
    if (c == '=' || c == '<' || c == '>') {
      tokens.push_back({TokenKind::kOp, std::string(1, c), start});
      ++i;
      continue;
    }
    if (c == '{' || c == '}' || c == '(' || c == ')' || c == '.' ||
        c == ';' || c == ',' || c == '*' || c == '!') {
      tokens.push_back({TokenKind::kPunct, std::string(1, c), start});
      ++i;
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenKind::kEof, "", n});
  return tokens;
}

}  // namespace kgqan::sparql
