// SPARQL query evaluation over a TripleStore + TextIndex.
//
// The evaluator compiles the query's variables to dense slots, seeds
// bindings from `bif:contains` text patterns (in text-index relevance
// order, so LIMIT keeps the best matches), joins triple patterns in the
// order chosen by the cardinality planner (sparql/planner.h), then applies
// OPTIONAL groups (left join) and FILTER expressions.
//
// Two execution models share that plan: the row-at-a-time path (a Binding
// vector per solution) and the opt-in vectorized path (EvalOptions::
// vectorized), which carries solutions as columnar TermId batches through
// broadcast/hash/probe join kernels.  Both compose with intra-query morsel
// sharding, and every mode is result-identical to the serial row path:
// same rows, same order, same caps.

#ifndef KGQAN_SPARQL_EVALUATOR_H_
#define KGQAN_SPARQL_EVALUATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sparql/ast.h"
#include "sparql/result_set.h"
#include "store/triple_store.h"
#include "text/text_index.h"
#include "util/status.h"

namespace kgqan::util {
class ThreadPool;
}  // namespace kgqan::util

namespace kgqan::store {
class CompactStore;
class ShardedStore;
}  // namespace kgqan::store

namespace kgqan::text {
class ShardedTextIndex;
}  // namespace kgqan::text

namespace kgqan::sparql {

struct EvalOptions {
  // Hard cap on intermediate/solution rows, like the result caps of public
  // SPARQL endpoints.  Evaluation stops (successfully) when reached.
  size_t max_rows = 100000;
  // Cap on candidates pulled from the text index per bif:contains pattern.
  size_t text_candidate_limit = 4096;
  // Intra-query parallelism: > 1 (with a non-null eval_pool) shards the
  // join steps into morsels executed on the pool.  The sharded path is
  // result-identical to the serial one (same rows, same order); 1 keeps
  // the exact legacy serial code path with zero extra allocations.
  size_t intra_query_threads = 1;
  // Pool the morsels run on; the calling thread always participates, so
  // evaluation never blocks on a saturated pool (see util::ParallelFor).
  // Not owned.  Ignored when intra_query_threads <= 1.
  util::ThreadPool* eval_pool = nullptr;
  // A join step only shards when its total located scan width is at least
  // this many triples (below it, fan-out overhead dominates), and each
  // morsel covers at least min_morsel_triples.  Tests lower both to force
  // sharding on tiny graphs.
  size_t min_shard_work = 4096;
  size_t min_morsel_triples = 1024;
  // Columnar execution: solutions flow as batches of term-id column
  // vectors through broadcast/hash/probe join kernels instead of
  // row-at-a-time Bindings.  Result-identical to the row path (same rows,
  // same order); composes with intra_query_threads.
  bool vectorized = false;
  // Vectorized work units per deadline re-check: every batch_size scanned
  // triples / emitted rows is a batch boundary where cancellation is
  // polled, so deadlines bite mid-scan at any kernel size.
  size_t batch_size = 1024;
  // Testing hook: microseconds slept at every batch boundary, to make
  // per-batch cancellation observable on small graphs.  0 in production.
  size_t testing_batch_delay_us = 0;
};

// Per-operator runtime statistics for EXPLAIN ANALYZE: one entry per
// executed join step, in execution order, with the planner's cardinality
// estimate next to the actual row counts so misestimates are visible per
// query instead of via ad-hoc benching.
struct OperatorStats {
  size_t pattern = 0;   // Pattern index within its group (plan input order).
  size_t order = 0;     // Execution position chosen by the planner.
  size_t estimate = 0;  // Planner cardinality estimate (Locate range size).
  size_t rows_in = 0;   // Solution rows entering the step.
  size_t rows_out = 0;  // Solution rows leaving it.
  size_t batches = 0;   // Batch boundaries crossed (vectorized path only).
  size_t morsels = 0;   // Morsels spawned (sharded row path only).
  std::string kernel;   // serial | sharded | broadcast | hash | probe.
  double ms = 0.0;
};

// Sink for the operator stats of the evaluations on one thread, bound via
// ScopedEvalProfile.  `dropped` counts entries past the retention cap
// (recursive OPTIONAL evaluation can execute one step per input row).
struct EvalProfile {
  static constexpr size_t kMaxOperators = 256;
  std::vector<OperatorStats> operators;
  size_t dropped = 0;

  void Add(OperatorStats stats) {
    if (operators.size() >= kMaxOperators) {
      ++dropped;
      return;
    }
    operators.push_back(std::move(stats));
  }
};

// Binds `profile` as the calling thread's operator-stats sink for the
// duration of the scope (nullptr = unbind).  The engine binds one around
// candidate-query evaluation when EXPLAIN ANALYZE or a sampled trace asks
// for per-operator detail; unbound evaluation skips all collection.
class ScopedEvalProfile {
 public:
  explicit ScopedEvalProfile(EvalProfile* profile);
  ~ScopedEvalProfile();

  ScopedEvalProfile(const ScopedEvalProfile&) = delete;
  ScopedEvalProfile& operator=(const ScopedEvalProfile&) = delete;

 private:
  EvalProfile* saved_;
};

// The calling thread's bound sink, or nullptr.
EvalProfile* CurrentEvalProfile();

// Evaluates `query` against `store` / `text_index`.
util::StatusOr<ResultSet> Evaluate(const Query& query,
                                   const store::TripleStore& store,
                                   const text::TextIndex& text_index,
                                   const EvalOptions& options = {});

// Sharded-backend overload: same evaluator, same plan, same rows in the
// same order (the ShardedStore's ordered cross-shard merge reproduces the
// single-store index order, and its Locate estimates are sum-exact, so
// the planner picks identical join orders).
util::StatusOr<ResultSet> Evaluate(const Query& query,
                                   const store::ShardedStore& store,
                                   const text::ShardedTextIndex& text_index,
                                   const EvalOptions& options = {});

// Compact-store overload (store v2): same evaluator and planner on the
// compressed CSR backend.  CompactScanRange sizes count exactly the
// matching triples, so plans — and therefore result bytes — are identical
// to the v1 store on the same graph.
util::StatusOr<ResultSet> Evaluate(const Query& query,
                                   const store::CompactStore& store,
                                   const text::TextIndex& text_index,
                                   const EvalOptions& options = {});

}  // namespace kgqan::sparql

#endif  // KGQAN_SPARQL_EVALUATOR_H_
