// SPARQL query evaluation over a TripleStore + TextIndex.
//
// The evaluator compiles the query's variables to dense slots, seeds
// bindings from `bif:contains` text patterns (in text-index relevance
// order, so LIMIT keeps the best matches), joins triple patterns with a
// greedy selectivity-ordered index-nested-loop strategy, then applies
// OPTIONAL groups (left join) and FILTER expressions.

#ifndef KGQAN_SPARQL_EVALUATOR_H_
#define KGQAN_SPARQL_EVALUATOR_H_

#include <cstddef>

#include "sparql/ast.h"
#include "sparql/result_set.h"
#include "store/triple_store.h"
#include "text/text_index.h"
#include "util/status.h"

namespace kgqan::util {
class ThreadPool;
}  // namespace kgqan::util

namespace kgqan::sparql {

struct EvalOptions {
  // Hard cap on intermediate/solution rows, like the result caps of public
  // SPARQL endpoints.  Evaluation stops (successfully) when reached.
  size_t max_rows = 100000;
  // Cap on candidates pulled from the text index per bif:contains pattern.
  size_t text_candidate_limit = 4096;
  // Intra-query parallelism: > 1 (with a non-null eval_pool) shards the
  // join steps into morsels executed on the pool.  The sharded path is
  // result-identical to the serial one (same rows, same order); 1 keeps
  // the exact legacy serial code path with zero extra allocations.
  size_t intra_query_threads = 1;
  // Pool the morsels run on; the calling thread always participates, so
  // evaluation never blocks on a saturated pool (see util::ParallelFor).
  // Not owned.  Ignored when intra_query_threads <= 1.
  util::ThreadPool* eval_pool = nullptr;
  // A join step only shards when its total located scan width is at least
  // this many triples (below it, fan-out overhead dominates), and each
  // morsel covers at least min_morsel_triples.  Tests lower both to force
  // sharding on tiny graphs.
  size_t min_shard_work = 4096;
  size_t min_morsel_triples = 1024;
};

// Evaluates `query` against `store` / `text_index`.
util::StatusOr<ResultSet> Evaluate(const Query& query,
                                   const store::TripleStore& store,
                                   const text::TextIndex& text_index,
                                   const EvalOptions& options = {});

}  // namespace kgqan::sparql

#endif  // KGQAN_SPARQL_EVALUATOR_H_
