#include "sparql/endpoint.h"

#include <array>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/trace.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "util/cancel.h"
#include "util/stopwatch.h"

namespace kgqan::sparql {

Endpoint::Endpoint(std::string name, EndpointOptions options)
    : name_(std::move(name)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  metric_requests_ = &registry.GetCounter("endpoint.requests");
  metric_round_trips_ = &registry.GetCounter("endpoint.round_trips");
  metric_errors_ = &registry.GetCounter("endpoint.errors");
  metric_cancelled_ = &registry.GetCounter("endpoint.cancelled");
  metric_query_latency_ms_ =
      &registry.GetHistogram("endpoint.query_latency_ms");
  if (options.intra_query_threads != 1) {
    // Virtual, but derived overrides only add derived-side configuration;
    // the base implementation (the one a base ctor dispatches to) is the
    // part that must run here.
    Endpoint::set_intra_query_threads(options.intra_query_threads);
  }
  if (options.vectorized_eval) {
    set_vectorized_eval(true);
  }
}

void Endpoint::set_intra_query_threads(size_t n) {
  if (n == 0) n = util::ThreadPool::DefaultThreads();
  eval_options_.intra_query_threads = n;
  if (n > 1) {
    // The querying thread itself drains morsels (util::ParallelFor), so a
    // pool of n - 1 workers yields n threads per sharded join step.
    if (!eval_pool_ || eval_pool_->size() != n - 1) {
      eval_pool_ = std::make_unique<util::ThreadPool>(n - 1);
    }
    eval_options_.eval_pool = eval_pool_.get();
  } else {
    eval_options_.eval_pool = nullptr;
    eval_pool_.reset();
  }
}

util::StatusOr<ResultSet> Endpoint::Query(std::string_view sparql) {
  return QueryBatch(sparql, 1);
}

bool Endpoint::CancellableSleepUs(int64_t us) {
  if (us <= 0) return true;
  // Chunked sleep so an expiring deadline interrupts the simulated network
  // wait promptly instead of after the full injected latency.
  constexpr int64_t kChunkUs = 200;
  util::Stopwatch watch;
  while (watch.ElapsedMillis() * 1000.0 < static_cast<double>(us)) {
    if (util::Cancelled()) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(kChunkUs));
  }
  return !util::Cancelled();
}

bool Endpoint::SleepInjectedLatency() const {
  return CancellableSleepUs(
      injected_latency_us_.load(std::memory_order_relaxed));
}

void Endpoint::RecordCancelled() {
  cancelled_count_.fetch_add(1, std::memory_order_relaxed);
  metric_cancelled_->Add(1);
  if (obs::Trace* trace = obs::CurrentTrace()) {
    trace->AddCounter(obs::TraceCounter::kEndpointCancelled, 1);
  }
}

void Endpoint::SetGauge(std::string_view name, size_t value) {
  obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge(name);
  const int64_t delta = static_cast<int64_t>(value) - gauge.Value();
  if (delta != 0) gauge.Add(delta);
}

util::StatusOr<ResultSet> Endpoint::QueryBatch(std::string_view sparql,
                                               size_t num_probes) {
  // Fail fast on an expired request: the query never leaves the client,
  // so neither query_count nor round_trips move.
  if (util::Cancelled()) {
    RecordCancelled();
    return util::Status::DeadlineExceeded("query dropped: deadline expired");
  }
  query_count_.fetch_add(num_probes, std::memory_order_relaxed);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  metric_requests_->Add(num_probes);
  metric_round_trips_->Add(1);
  // Attribute the traffic to the calling thread's question, not just the
  // global counters: this is what keeps per-question counts exact when
  // several questions share the endpoint concurrently.
  if (obs::Trace* trace = obs::CurrentTrace()) {
    trace->AddCounter(obs::TraceCounter::kEndpointRequests, num_probes);
    trace->AddCounter(obs::TraceCounter::kEndpointRoundTrips, 1);
  }
  obs::ScopedSpan span("sparql.query");
  if (span.recording()) {
    // The query text itself (truncated), so a sampled trace or flight
    // record is forensically useful without re-deriving the SPARQL.
    constexpr size_t kMaxSparqlAttr = 512;
    span.AddAttribute("sparql", sparql.size() <= kMaxSparqlAttr
                                    ? sparql
                                    : sparql.substr(0, kMaxSparqlAttr));
  }
  if (!SleepInjectedLatency()) {
    // The exchange was issued (and counted) but the deadline expired while
    // it was in flight: abandon it without evaluating.
    RecordCancelled();
    return util::Status::DeadlineExceeded("query abandoned: deadline expired");
  }
  util::StatusOr<ResultSet> result = EvaluateQuery(sparql);
  metric_query_latency_ms_->Record(span.watch().ElapsedMillis());
  if (result.ok()) {
    if (span.recording()) {
      if (num_probes > 1) {
        span.AddAttribute("probes", std::to_string(num_probes));
      }
      span.AddAttribute("rows", std::to_string(result->is_ask()
                                                   ? size_t{result->ask_value()}
                                                   : result->NumRows()));
    }
  } else if (result.status().code() == util::StatusCode::kDeadlineExceeded) {
    // The evaluator (or a backend-side wait) unwound on the request
    // deadline: that is a cancellation (like an abandoned in-flight
    // exchange), not an error.
    RecordCancelled();
    span.AddAttribute("error", result.status().message());
  } else {
    metric_errors_->Add(1);
    span.AddAttribute("error", result.status().message());
  }
  return result;
}

util::StatusOr<size_t> Endpoint::AddNTriples(std::string_view ntriples) {
  KGQAN_ASSIGN_OR_RETURN(rdf::Graph delta, rdf::ParseNTriples(ntriples));
  std::vector<std::array<rdf::Term, 3>> triples;
  triples.reserve(delta.size());
  for (const rdf::Triple& t : delta.triples()) {
    triples.push_back({delta.dictionary().Get(t.s),
                       delta.dictionary().Get(t.p),
                       delta.dictionary().Get(t.o)});
  }
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  size_t added = InsertTriples(triples);
  if (added > 0) {
    generation_.fetch_add(1, std::memory_order_release);
  }
  return added;
}

LocalEndpoint::LocalEndpoint(std::string name, rdf::Graph graph,
                             EndpointOptions options)
    : Endpoint(std::move(name), options),
      store_(std::move(graph), options.build_threads) {
  text_index_ = std::make_unique<text::TextIndex>(store_);
  PublishStoreGauges();
}

util::StatusOr<ResultSet> LocalEndpoint::EvaluateQuery(
    std::string_view sparql) {
  KGQAN_ASSIGN_OR_RETURN(sparql::Query query, ParseQuery(sparql));
  // Shared lock: the store and text index are read-only during evaluation;
  // only AddNTriples mutates them (under the unique lock).
  std::shared_lock<std::shared_mutex> lock(data_mutex());
  return Evaluate(query, store_, *text_index_, eval_options_);
}

size_t LocalEndpoint::InsertTriples(
    const std::vector<std::array<rdf::Term, 3>>& triples) {
  size_t added = store_.Insert(triples);
  if (added > 0) {
    // The built-in full-text index covers the new literals after a
    // rebuild, as an RDF engine's background indexer would.
    text_index_ = std::make_unique<text::TextIndex>(store_);
    PublishStoreGauges();
  }
  return added;
}

void LocalEndpoint::PublishStoreGauges() const {
  // v1 keeps decoded Terms in the dictionary, so its whole footprint is
  // index + dictionary; it has no delta overlay.
  const size_t dict = store_.dictionary().ApproxBytes();
  const size_t total = store_.ApproxIndexBytes();
  SetGauge("store.index_bytes", total > dict ? total - dict : 0);
  SetGauge("store.dict_bytes", dict);
  SetGauge("store.overlay_triples", 0);
}

CompactEndpoint::CompactEndpoint(std::string name, rdf::Graph graph,
                                 EndpointOptions options)
    : Endpoint(std::move(name), options),
      store_(std::move(graph), options.build_threads) {
  text_index_ = std::make_unique<text::TextIndex>(store_);
  PublishStoreGauges();
}

CompactEndpoint::CompactEndpoint(std::string name, store::CompactStore store,
                                 EndpointOptions options)
    : Endpoint(std::move(name), options), store_(std::move(store)) {
  text_index_ = std::make_unique<text::TextIndex>(store_);
  PublishStoreGauges();
}

util::StatusOr<std::unique_ptr<CompactEndpoint>> CompactEndpoint::FromSnapshot(
    std::string name, const std::string& snapshot_path,
    EndpointOptions options) {
  store::CompactStore store;
  KGQAN_RETURN_IF_ERROR(store.LoadSnapshot(snapshot_path));
  return std::unique_ptr<CompactEndpoint>(
      new CompactEndpoint(std::move(name), std::move(store), options));
}

util::StatusOr<ResultSet> CompactEndpoint::EvaluateQuery(
    std::string_view sparql) {
  KGQAN_ASSIGN_OR_RETURN(sparql::Query query, ParseQuery(sparql));
  std::shared_lock<std::shared_mutex> lock(data_mutex());
  return Evaluate(query, store_, *text_index_, eval_options_);
}

size_t CompactEndpoint::InsertTriples(
    const std::vector<std::array<rdf::Term, 3>>& triples) {
  size_t added = store_.Insert(triples);
  if (added > 0) {
    text_index_ = std::make_unique<text::TextIndex>(store_);
    PublishStoreGauges();
  }
  return added;
}

util::Status CompactEndpoint::WriteSnapshot(const std::string& path) {
  // WriteSnapshot compacts the overlay first, so republish the gauges.
  util::Status status = store_.WriteSnapshot(path);
  PublishStoreGauges();
  return status;
}

void CompactEndpoint::PublishStoreGauges() const {
  SetGauge("store.index_bytes", store_.index_bytes() + store_.overlay_bytes());
  SetGauge("store.dict_bytes", store_.dict_bytes());
  SetGauge("store.overlay_triples", store_.overlay_triples());
}

}  // namespace kgqan::sparql
