#include "sparql/endpoint.h"

#include <array>
#include <mutex>

#include "rdf/ntriples.h"
#include "sparql/parser.h"

namespace kgqan::sparql {

Endpoint::Endpoint(std::string name, rdf::Graph graph)
    : name_(std::move(name)), store_(std::move(graph)) {
  text_index_ = std::make_unique<text::TextIndex>(store_);
}

util::StatusOr<ResultSet> Endpoint::Query(std::string_view sparql) {
  return QueryBatch(sparql, 1);
}

util::StatusOr<ResultSet> Endpoint::QueryBatch(std::string_view sparql,
                                               size_t num_probes) {
  query_count_.fetch_add(num_probes, std::memory_order_relaxed);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  KGQAN_ASSIGN_OR_RETURN(sparql::Query query, ParseQuery(sparql));
  // Shared lock: the store and text index are read-only during evaluation;
  // only AddNTriples mutates them (under the unique lock).
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  return Evaluate(query, store_, *text_index_, eval_options_);
}

util::StatusOr<size_t> Endpoint::AddNTriples(std::string_view ntriples) {
  KGQAN_ASSIGN_OR_RETURN(rdf::Graph delta, rdf::ParseNTriples(ntriples));
  std::vector<std::array<rdf::Term, 3>> triples;
  triples.reserve(delta.size());
  for (const rdf::Triple& t : delta.triples()) {
    triples.push_back({delta.dictionary().Get(t.s),
                       delta.dictionary().Get(t.p),
                       delta.dictionary().Get(t.o)});
  }
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  size_t added = store_.Insert(triples);
  if (added > 0) {
    // The built-in full-text index covers the new literals after a
    // rebuild, as an RDF engine's background indexer would.
    text_index_ = std::make_unique<text::TextIndex>(store_);
    generation_.fetch_add(1, std::memory_order_release);
  }
  return added;
}

}  // namespace kgqan::sparql
