#include "store/compact_store.h"

#include <cstring>
#include <iterator>
#include <utility>

#include "util/thread_pool.h"

namespace kgqan::store {

namespace {

// Snapshot section ids: permutation p owns p*4 + {keys, offsets, blocks,
// stream}; the dictionary and store metadata live above the perm range.
constexpr uint32_t kSecKeys = 0;
constexpr uint32_t kSecOffsets = 1;
constexpr uint32_t kSecBlocks = 2;
constexpr uint32_t kSecStream = 3;
constexpr uint32_t kSecDictPool = 100;
constexpr uint32_t kSecDictBuckets = 101;
constexpr uint32_t kSecDictSortedToId = 102;
constexpr uint32_t kSecDictIdToSorted = 103;
constexpr uint32_t kSecMeta = 200;

// Prefix comparison of v1's Locate, over the overlay's Triple storage.
struct OverlayPrefixLess {
  Perm perm;
  int prefix;
  bool operator()(const Triple& a, const Triple& b) const {
    const auto ka = PermKey(perm, a);
    const auto kb = PermKey(perm, b);
    if (std::get<0>(ka) != std::get<0>(kb)) {
      return std::get<0>(ka) < std::get<0>(kb);
    }
    if (prefix >= 2 && std::get<1>(ka) != std::get<1>(kb)) {
      return std::get<1>(ka) < std::get<1>(kb);
    }
    if (prefix >= 3 && std::get<2>(ka) != std::get<2>(kb)) {
      return std::get<2>(ka) < std::get<2>(kb);
    }
    return false;
  }
};

std::pair<size_t, size_t> OverlayEqualRange(const std::vector<Triple>& ov,
                                            Perm perm, int prefix,
                                            const Triple& probe) {
  const auto [lo, hi] = std::equal_range(ov.begin(), ov.end(), probe,
                                         OverlayPrefixLess{perm, prefix});
  return {static_cast<size_t>(lo - ov.begin()),
          static_cast<size_t>(hi - ov.begin())};
}

}  // namespace

CompactStore::CompactStore(rdf::Graph graph, size_t build_threads)
    : dict_(graph.dictionary()) {
  BuildFrom({graph.triples().begin(), graph.triples().end()}, build_threads);
}

CompactStore::PermIndex CompactStore::EncodePerm(
    Perm perm, const std::vector<Triple>& sorted) {
  std::vector<TermId> keys;
  std::vector<uint32_t> offsets;
  std::vector<uint64_t> blocks;
  std::vector<uint8_t> stream;
  blocks.reserve(sorted.size() / kBlock + 1);

  TermId prev_k2 = 0;
  TermId prev_k3 = 0;
  for (size_t e = 0; e < sorted.size(); ++e) {
    const auto [k1, k2, k3] = PermKey(perm, sorted[e]);
    const bool run_start = keys.empty() || k1 != keys.back();
    if (run_start) {
      keys.push_back(k1);
      offsets.push_back(static_cast<uint32_t>(e));
    }
    if (e % kBlock == 0) blocks.push_back(stream.size());
    if (run_start || e % kBlock == 0) {
      util::AppendVarint(&stream, k2);
      util::AppendVarint(&stream, k3);
    } else {
      const uint64_t d2 = k2 - prev_k2;
      util::AppendVarint(&stream, d2);
      util::AppendVarint(&stream, d2 != 0 ? k3 : k3 - prev_k3);
    }
    prev_k2 = k2;
    prev_k3 = k3;
  }
  offsets.push_back(static_cast<uint32_t>(sorted.size()));

  PermIndex pi;
  keys.shrink_to_fit();
  stream.shrink_to_fit();
  pi.keys.Own(std::move(keys));
  pi.offsets.Own(std::move(offsets));
  pi.blocks.Own(std::move(blocks));
  pi.stream.Own(std::move(stream));
  return pi;
}

void CompactStore::BuildFrom(std::vector<Triple> base, size_t build_threads) {
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());

  std::array<PermIndex, 6> built;
  auto build_one = [&](size_t i) {
    const Perm perm = static_cast<Perm>(i);
    if (perm == Perm::kSpo) {
      // The natural Triple order is the SPO key order.
      built[i] = EncodePerm(perm, base);
    } else {
      std::vector<Triple> copy = base;
      std::sort(copy.begin(), copy.end(), PermLess{perm});
      built[i] = EncodePerm(perm, copy);
    }
  };
  if (build_threads > 1) {
    util::ThreadPool pool(std::min<size_t>(build_threads, 6) - 1);
    util::ParallelFor(&pool, 6, build_one);
  } else {
    for (size_t i = 0; i < 6; ++i) build_one(i);
  }

  base_total_ = base.size();
  perms_ = std::move(built);
  mapping_ = SnapshotReader();
}

std::vector<Triple> CompactStore::DecodeAll() const {
  std::vector<Triple> out;
  out.reserve(base_total_);
  if (base_total_ == 0) return out;
  Cursor cur;
  cur.Seek(perms_[0], 0);
  for (size_t e = 0; e < base_total_; ++e) {
    cur.Step();
    out.push_back({cur.k1(), cur.k2, cur.k3});  // SPO: key order is (s,p,o)
  }
  return out;
}

uint64_t CompactStore::CompositeAtBlock(const PermIndex& pi, size_t b) {
  size_t pos = pi.blocks[b];
  const uint64_t k2 = util::ReadVarint(pi.stream.data(), &pos);
  const uint64_t k3 = util::ReadVarint(pi.stream.data(), &pos);
  return (k2 << 32) | k3;
}

size_t CompactStore::LowerBoundEntry(const PermIndex& pi, size_t run,
                                     size_t rlo, size_t rhi,
                                     uint64_t target) {
  if (rlo >= rhi) return rlo;
  // Binary search over block-first entries strictly inside (rlo, rhi):
  // each is absolutely encoded at a known byte offset, so probing is O(1).
  const size_t b_lo = rlo / kBlock + 1;
  const size_t b_hi = std::max(b_lo, (rhi + kBlock - 1) / kBlock);
  size_t lo = b_lo;
  size_t hi = b_hi;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompositeAtBlock(pi, mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // Blocks below `lo` start < target: scan forward from the latest known
  // position, bounded by the next block start (or the slice end).  The
  // slice lies in run `run`, so the cursor lands without a run search.
  const size_t start = lo == b_lo ? rlo : (lo - 1) * kBlock;
  const size_t cap = lo < b_hi ? std::min(rhi, lo * kBlock) : rhi;
  Cursor cur;
  cur.SeekHinted(pi, start, run);
  for (size_t e = start; e < cap; ++e) {
    cur.Step();
    const uint64_t composite =
        (static_cast<uint64_t>(cur.k2) << 32) | cur.k3;
    if (composite >= target) return e;
  }
  return cap;
}

CompactScanRange CompactStore::Locate(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;

  // Same permutation choice as v1 for every bound-component combination.
  Perm perm;
  int prefix;
  if (bs && bp && bo) {
    perm = Perm::kSpo;
    prefix = 3;
  } else if (bs && bp) {
    perm = Perm::kSpo;
    prefix = 2;
  } else if (bs && bo) {
    perm = Perm::kSop;
    prefix = 2;
  } else if (bp && bo) {
    perm = Perm::kPos;
    prefix = 2;
  } else if (bs) {
    perm = Perm::kSpo;
    prefix = 1;
  } else if (bp) {
    perm = Perm::kPso;
    prefix = 1;
  } else if (bo) {
    perm = Perm::kOsp;
    prefix = 1;
  } else {
    return CompactScanRange{Perm::kSpo, 0, base_total_, 0,
                            overlay_[0].size(), 0};
  }

  const PermIndex& pi = perms_[static_cast<size_t>(perm)];
  const Triple probe{s, p, o};
  const auto [pk1, pk2, pk3] = PermKey(perm, probe);

  // Base: run lookup on the unique-k1 key array.
  const size_t r = static_cast<size_t>(
      std::lower_bound(pi.keys.begin(), pi.keys.end(), pk1) -
      pi.keys.begin());
  size_t blo;
  size_t bhi;
  if (r < pi.keys.size() && pi.keys[r] == pk1) {
    blo = pi.offsets[r];
    bhi = pi.offsets[r + 1];
    if (prefix == 2) {
      const uint64_t t_lo = static_cast<uint64_t>(pk2) << 32;
      const size_t lo2 = LowerBoundEntry(pi, r, blo, bhi, t_lo);
      const size_t hi2 =
          pk2 == UINT32_MAX
              ? bhi
              : LowerBoundEntry(pi, r, blo, bhi,
                                static_cast<uint64_t>(pk2 + 1ull) << 32);
      blo = lo2;
      bhi = hi2;
    } else if (prefix == 3) {
      const uint64_t t = (static_cast<uint64_t>(pk2) << 32) | pk3;
      const size_t lo2 = LowerBoundEntry(pi, r, blo, bhi, t);
      const size_t hi2 =
          t == UINT64_MAX ? bhi : LowerBoundEntry(pi, r, blo, bhi, t + 1);
      blo = lo2;
      bhi = hi2;
    }
  } else {
    // Empty, at the would-be insertion run.
    blo = bhi = pi.offsets.empty() ? 0 : pi.offsets[r];
  }

  const auto [olo, ohi] = OverlayEqualRange(
      overlay_[static_cast<size_t>(perm)], perm, prefix, probe);
  // `r` is blo's run when the key was found; on the empty path
  // blo == offsets[r], which still satisfies the hint contract.
  return CompactScanRange{perm, blo, bhi, olo, ohi,
                          r < pi.keys.size() ? r : SIZE_MAX};
}

std::vector<CompactScanRange> CompactStore::Partition(
    const CompactScanRange& range, size_t max_parts) const {
  std::vector<CompactScanRange> parts;
  const size_t bw = range.hi - range.lo;
  const size_t ow = range.overlay_hi - range.overlay_lo;
  if (bw + ow == 0 || max_parts == 0) return parts;

  if (bw == 0) {
    // Overlay-only range: v1's integer split over the overlay slice.
    const size_t k = std::min(max_parts, ow);
    parts.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      const size_t lo = range.overlay_lo + ow * i / k;
      const size_t hi = range.overlay_lo + ow * (i + 1) / k;
      if (hi > lo) {
        parts.push_back(CompactScanRange{range.perm, range.lo, range.lo, lo,
                                         hi});
      }
    }
    return parts;
  }

  const Perm perm = range.perm;
  const PermIndex& pi = perms_[static_cast<size_t>(perm)];
  const std::vector<Triple>& ov = overlay_[static_cast<size_t>(perm)];
  const size_t k = std::min(max_parts, bw);
  parts.reserve(k);
  size_t prev_olo = range.overlay_lo;
  size_t hint = range.run_hint;
  for (size_t i = 0; i < k; ++i) {
    const size_t lo = range.lo + bw * i / k;
    const size_t hi = range.lo + bw * (i + 1) / k;
    size_t next_hint = SIZE_MAX;
    size_t ohi;
    if (i + 1 == k) {
      ohi = range.overlay_hi;
    } else {
      // Overlay entries whose key precedes the next slice's first base
      // key belong to this slice; keys are globally unique so the cut is
      // unambiguous and concatenated slice merges reproduce the full
      // merge.
      Cursor cur;
      cur.SeekHinted(pi, hi, hint);
      cur.Step();
      // After decoding entry `hi`, cur.run is the run containing it — a
      // valid decode hint for the next part, which starts at `hi`.
      next_hint = cur.run;
      const std::tuple<TermId, TermId, TermId> cut{cur.k1(), cur.k2, cur.k3};
      ohi = static_cast<size_t>(
          std::lower_bound(ov.begin() + prev_olo,
                           ov.begin() + range.overlay_hi, cut,
                           [perm](const Triple& t,
                                  const std::tuple<TermId, TermId, TermId>&
                                      key) { return PermKey(perm, t) < key; }) -
          ov.begin());
    }
    parts.push_back(CompactScanRange{perm, lo, hi, prev_olo, ohi, hint});
    prev_olo = ohi;
    hint = next_hint;
  }
  return parts;
}

std::vector<Triple> CompactStore::MatchAll(TermId s, TermId p, TermId o,
                                           size_t limit) const {
  std::vector<Triple> out;
  Match(s, p, o, [&](const Triple& t) {
    out.push_back(t);
    return out.size() < limit;
  });
  return out;
}

size_t CompactStore::Insert(
    const std::vector<std::array<rdf::Term, 3>>& triples) {
  // Intern in v1's order (s, p, o per triple) so fresh terms get the same
  // ids a TripleStore would assign.
  std::vector<Triple> fresh;
  fresh.reserve(triples.size());
  for (const auto& t : triples) {
    const Triple id_triple{dict_.Intern(t[0]), dict_.Intern(t[1]),
                           dict_.Intern(t[2])};
    if (!Contains(id_triple.s, id_triple.p, id_triple.o)) {
      fresh.push_back(id_triple);
    }
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  return InsertIds(std::move(fresh));
}

size_t CompactStore::InsertIds(std::vector<Triple> fresh) {
  if (fresh.empty()) return 0;
  for (size_t i = 0; i < 6; ++i) {
    const Perm perm = static_cast<Perm>(i);
    std::vector<Triple> batch = fresh;
    std::sort(batch.begin(), batch.end(), PermLess{perm});
    std::vector<Triple> merged;
    merged.reserve(overlay_[i].size() + batch.size());
    std::merge(overlay_[i].begin(), overlay_[i].end(), batch.begin(),
               batch.end(), std::back_inserter(merged), PermLess{perm});
    overlay_[i] = std::move(merged);
  }
  return fresh.size();
}

size_t CompactStore::Erase(TermId s, TermId p, TermId o) {
  std::vector<Triple> victims = MatchAll(s, p, o);
  if (victims.empty()) return 0;
  std::sort(victims.begin(), victims.end());
  const auto is_victim = [&](const Triple& t) {
    return std::binary_search(victims.begin(), victims.end(), t);
  };

  // overlay_[kSpo] is the canonical overlay set: anything not in it lives
  // in the compressed base.
  const std::vector<Triple>& canon = overlay_[0];
  bool base_victim = false;
  for (const Triple& v : victims) {
    if (!std::binary_search(canon.begin(), canon.end(), v)) {
      base_victim = true;
      break;
    }
  }
  for (auto& ov : overlay_) {
    ov.erase(std::remove_if(ov.begin(), ov.end(), is_victim), ov.end());
  }
  if (base_victim) {
    std::vector<Triple> kept = DecodeAll();
    kept.erase(std::remove_if(kept.begin(), kept.end(), is_victim),
               kept.end());
    BuildFrom(std::move(kept), 1);
  }
  return victims.size();
}

void CompactStore::Compact() {
  if (overlay_[0].empty() && dict_.extra_terms() == 0) return;
  std::vector<Triple> all = DecodeAll();
  all.insert(all.end(), overlay_[0].begin(), overlay_[0].end());
  for (auto& ov : overlay_) {
    ov.clear();
    ov.shrink_to_fit();
  }
  dict_.Fold();
  BuildFrom(std::move(all), 1);
}

util::Status CompactStore::WriteSnapshot(const std::string& path) {
  Compact();
  SnapshotWriter writer;
  const uint64_t meta[2] = {dict_.MaxId(), base_total_};
  writer.AddSection(kSecMeta, meta, sizeof(meta));
  writer.AddSection(kSecDictPool, dict_.pool().data(),
                    dict_.pool().PayloadBytes());
  writer.AddSection(kSecDictBuckets, dict_.bucket_offsets().data(),
                    dict_.bucket_offsets().PayloadBytes());
  writer.AddSection(kSecDictSortedToId, dict_.sorted_to_id().data(),
                    dict_.sorted_to_id().PayloadBytes());
  writer.AddSection(kSecDictIdToSorted, dict_.id_to_sorted().data(),
                    dict_.id_to_sorted().PayloadBytes());
  for (uint32_t p = 0; p < 6; ++p) {
    const PermIndex& pi = perms_[p];
    writer.AddSection(p * 4 + kSecKeys, pi.keys.data(),
                      pi.keys.PayloadBytes());
    writer.AddSection(p * 4 + kSecOffsets, pi.offsets.data(),
                      pi.offsets.PayloadBytes());
    writer.AddSection(p * 4 + kSecBlocks, pi.blocks.data(),
                      pi.blocks.PayloadBytes());
    writer.AddSection(p * 4 + kSecStream, pi.stream.data(),
                      pi.stream.PayloadBytes());
  }
  return writer.WriteTo(path);
}

util::Status CompactStore::LoadSnapshot(const std::string& path) {
  SnapshotReader reader;
  KGQAN_RETURN_IF_ERROR(reader.Open(path));

  const auto section = [&](uint32_t id, size_t* len) {
    return reader.Section(id, len);
  };
  size_t len = 0;
  const uint8_t* meta = section(kSecMeta, &len);
  if (meta == nullptr || len != 2 * sizeof(uint64_t)) {
    return util::Status::ParseError("snapshot: missing meta section in " +
                                    path);
  }
  uint64_t num_terms = 0;
  uint64_t total = 0;
  std::memcpy(&num_terms, meta, sizeof(num_terms));
  std::memcpy(&total, meta + sizeof(num_terms), sizeof(total));

  size_t pool_len = 0;
  size_t buckets_len = 0;
  size_t s2i_len = 0;
  size_t i2s_len = 0;
  const uint8_t* pool = section(kSecDictPool, &pool_len);
  const uint8_t* buckets = section(kSecDictBuckets, &buckets_len);
  const uint8_t* s2i = section(kSecDictSortedToId, &s2i_len);
  const uint8_t* i2s = section(kSecDictIdToSorted, &i2s_len);
  if (pool == nullptr || buckets == nullptr || s2i == nullptr ||
      i2s == nullptr || buckets_len % sizeof(uint64_t) != 0 ||
      s2i_len != num_terms * sizeof(uint32_t) ||
      i2s_len != (num_terms + 1) * sizeof(uint32_t)) {
    return util::Status::ParseError(
        "snapshot: malformed dictionary sections in " + path);
  }

  struct PermSections {
    const TermId* keys;
    size_t num_keys;
    const uint32_t* offsets;
    const uint64_t* blocks;
    size_t num_blocks;
    const uint8_t* stream;
    size_t stream_len;
  };
  PermSections ps[6];
  const size_t want_blocks = (total + kBlock - 1) / kBlock;
  for (uint32_t p = 0; p < 6; ++p) {
    size_t keys_len = 0;
    size_t offsets_len = 0;
    size_t blocks_len = 0;
    size_t stream_len = 0;
    const uint8_t* keys = section(p * 4 + kSecKeys, &keys_len);
    const uint8_t* offsets = section(p * 4 + kSecOffsets, &offsets_len);
    const uint8_t* blocks = section(p * 4 + kSecBlocks, &blocks_len);
    const uint8_t* stream = section(p * 4 + kSecStream, &stream_len);
    const size_t num_keys = keys_len / sizeof(TermId);
    if (keys == nullptr || offsets == nullptr || blocks == nullptr ||
        stream == nullptr || keys_len % sizeof(TermId) != 0 ||
        offsets_len != (num_keys + 1) * sizeof(uint32_t) ||
        blocks_len != want_blocks * sizeof(uint64_t)) {
      return util::Status::ParseError(
          "snapshot: malformed index sections in " + path);
    }
    const uint32_t* off32 = reinterpret_cast<const uint32_t*>(offsets);
    if (off32[num_keys] != total) {
      return util::Status::ParseError(
          "snapshot: inconsistent entry counts in " + path);
    }
    ps[p] = {reinterpret_cast<const TermId*>(keys),
             num_keys,
             off32,
             reinterpret_cast<const uint64_t*>(blocks),
             want_blocks,
             stream,
             stream_len};
  }

  // Everything validated: adopt the mapping.
  dict_.AdoptBorrowed(pool, pool_len,
                      reinterpret_cast<const uint64_t*>(buckets),
                      buckets_len / sizeof(uint64_t),
                      reinterpret_cast<const uint32_t*>(s2i),
                      reinterpret_cast<const uint32_t*>(i2s), num_terms);
  for (uint32_t p = 0; p < 6; ++p) {
    perms_[p].keys.Borrow(ps[p].keys, ps[p].num_keys);
    perms_[p].offsets.Borrow(ps[p].offsets, ps[p].num_keys + 1);
    perms_[p].blocks.Borrow(ps[p].blocks, ps[p].num_blocks);
    perms_[p].stream.Borrow(ps[p].stream, ps[p].stream_len);
  }
  base_total_ = total;
  for (auto& ov : overlay_) ov.clear();
  mapping_ = std::move(reader);
  return util::Status::Ok();
}

size_t CompactStore::index_bytes() const {
  size_t bytes = 0;
  for (const PermIndex& pi : perms_) {
    bytes += pi.keys.PayloadBytes() + pi.offsets.PayloadBytes() +
             pi.blocks.PayloadBytes() + pi.stream.PayloadBytes();
  }
  return bytes;
}

size_t CompactStore::overlay_bytes() const {
  size_t bytes = 0;
  for (const std::vector<Triple>& ov : overlay_) {
    bytes += ov.capacity() * sizeof(Triple);
  }
  return bytes;
}

}  // namespace kgqan::store
