#include "store/sharded_store.h"

#include <algorithm>
#include <tuple>

namespace kgqan::store {

namespace {

// FNV-1a 64-bit.
uint64_t Fnv1a(uint64_t h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

size_t SubjectShard(const rdf::Term& term, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t h = 1469598103934665603ULL;
  const unsigned char kind = static_cast<unsigned char>(term.kind);
  h ^= kind;
  h *= 1099511628211ULL;
  h = Fnv1a(h, term.value);
  h = Fnv1a(h, {"\0", 1});
  h = Fnv1a(h, term.datatype);
  h = Fnv1a(h, {"\0", 1});
  h = Fnv1a(h, term.lang);
  return static_cast<size_t>(h % num_shards);
}

ShardedStore::ShardedStore(rdf::Graph graph, size_t num_shards,
                           size_t build_threads)
    : num_shards_(std::min<size_t>(std::max<size_t>(num_shards, 1), 255)) {
  const size_t n = num_shards_;
  dict_ = std::make_unique<rdf::TermDictionary>(std::move(graph.dictionary()));
  ExtendOwners();

  // Per-shard dedup below is also global dedup: duplicates share a subject
  // and therefore a shard.
  std::vector<std::vector<Triple>> by_shard(n);
  for (const Triple& t : graph.triples()) {
    by_shard[owner_[t.s]].push_back(t);
  }
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.emplace_back(std::move(by_shard[i]), dict_.get(), build_threads);
  }
  shard_lookups_ = std::make_unique<std::atomic<uint64_t>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    shard_lookups_[i].store(0, std::memory_order_relaxed);
  }
}

void ShardedStore::ExtendOwners() {
  const size_t want = static_cast<size_t>(dict_->MaxId()) + 1;
  const size_t have = owner_.size();
  if (want <= have) return;
  owner_.resize(want);
  for (size_t id = std::max<size_t>(have, 1); id < want; ++id) {
    owner_[id] = static_cast<uint8_t>(
        SubjectShard(dict_->Get(static_cast<TermId>(id)), num_shards_));
  }
}

size_t ShardedStore::size() const {
  size_t total = 0;
  for (const TripleStore& s : shards_) total += s.size();
  return total;
}

size_t ShardedStore::Insert(
    const std::vector<std::array<rdf::Term, 3>>& triples) {
  // Mirror TripleStore::Insert exactly: intern s, p, o per triple in input
  // order (so new TermIds match the single-store path), drop triples the
  // store already holds, sort + unique.
  std::vector<Triple> fresh;
  fresh.reserve(triples.size());
  for (const auto& t : triples) {
    Triple id_triple{dict_->Intern(t[0]), dict_->Intern(t[1]),
                     dict_->Intern(t[2])};
    ExtendOwners();
    if (!Contains(id_triple.s, id_triple.p, id_triple.o)) {
      fresh.push_back(id_triple);
    }
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  if (fresh.empty()) return 0;

  // Route to owners; per-shard batches stay sorted/unique/disjoint, the
  // InsertIds contract.
  std::vector<std::vector<Triple>> by_shard(shards_.size());
  for (const Triple& t : fresh) by_shard[owner_[t.s]].push_back(t);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!by_shard[i].empty()) shards_[i].InsertIds(std::move(by_shard[i]));
  }
  return fresh.size();
}

ShardedScanRange ShardedStore::Locate(TermId s, TermId p, TermId o) const {
  ShardedScanRange out;
  out.parts.resize(shards_.size());
  if (s != kNullTermId) {
    // Subject-bound: only the owning shard can hold matches.  Unknown ids
    // (e.g. the evaluator's query-local VALUES overlay ids) match nothing.
    routed_lookups_.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<size_t>(s) < owner_.size()) {
      const size_t owner = owner_[s];
      shard_lookups_[owner].fetch_add(1, std::memory_order_relaxed);
      ScanRange r = shards_[owner].Locate(s, p, o);
      out.perm = r.perm;
      out.total = r.size();
      for (size_t i = 0; i < out.parts.size(); ++i) {
        out.parts[i] = ScanRange{r.perm, 0, 0};
      }
      out.parts[owner] = r;
    }
    return out;
  }
  // Fan out: the permutation choice depends only on the bound pattern, so
  // every shard returns ranges in the same index.
  fanout_lookups_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < shards_.size(); ++i) {
    ScanRange r = shards_[i].Locate(s, p, o);
    if (!r.empty()) {
      shard_lookups_[i].fetch_add(1, std::memory_order_relaxed);
    }
    out.perm = r.perm;
    out.parts[i] = r;
    out.total += r.size();
  }
  return out;
}

std::vector<ShardedScanRange> ShardedStore::Partition(
    const ShardedScanRange& range, size_t max_parts) const {
  std::vector<ShardedScanRange> out;
  if (range.total == 0 || max_parts == 0) return out;
  const size_t k = std::min(max_parts, range.total);
  const Perm perm = range.perm;
  const size_t n = shards_.size();

  size_t nonempty = 0;
  size_t last = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!range.parts[i].empty()) {
      ++nonempty;
      last = i;
    }
  }
  if (nonempty == 1) {
    // One live shard: reuse the contiguous integer split.
    for (const ScanRange& slice :
         TripleStore::Partition(range.parts[last], k)) {
      ShardedScanRange morsel;
      morsel.perm = perm;
      morsel.parts.assign(n, ScanRange{perm, 0, 0});
      morsel.parts[last] = slice;
      morsel.total = slice.size();
      out.push_back(std::move(morsel));
    }
    return out;
  }
  if (k == 1) {
    out.push_back(range);
    return out;
  }

  // Candidate boundary keys: per-shard quantile positions.  Cutting every
  // shard at the same key keeps each morsel a key interval, so the morsel
  // merges concatenate into the full ordered merge.
  using Key = std::tuple<TermId, TermId, TermId>;
  std::vector<Key> cand;
  cand.reserve(nonempty * (k - 1));
  for (size_t i = 0; i < n; ++i) {
    const ScanRange& part = range.parts[i];
    if (part.empty()) continue;
    const std::vector<Triple>& idx = shards_[i].index(perm);
    for (size_t j = 1; j < k; ++j) {
      const size_t pos = part.lo + part.size() * j / k;
      if (pos > part.lo && pos < part.hi) {
        cand.push_back(PermKey(perm, idx[pos]));
      }
    }
  }
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  std::vector<Key> bounds;
  if (cand.size() <= k - 1) {
    bounds = std::move(cand);
  } else {
    bounds.reserve(k - 1);
    for (size_t j = 1; j < k; ++j) {
      bounds.push_back(cand[cand.size() * j / k]);
    }
  }

  std::vector<size_t> prev(n);
  for (size_t i = 0; i < n; ++i) prev[i] = range.parts[i].lo;
  auto emit = [&](const std::vector<size_t>& cut) {
    ShardedScanRange morsel;
    morsel.perm = perm;
    morsel.parts.resize(n);
    for (size_t i = 0; i < n; ++i) {
      morsel.parts[i] = ScanRange{perm, prev[i], cut[i]};
      morsel.total += cut[i] - prev[i];
    }
    if (morsel.total > 0) out.push_back(std::move(morsel));
    prev = cut;
  };
  std::vector<size_t> cut(n);
  for (const Key& b : bounds) {
    const Triple probe =
        TripleFromPermKey(perm, std::get<0>(b), std::get<1>(b), std::get<2>(b));
    for (size_t i = 0; i < n; ++i) {
      const ScanRange& part = range.parts[i];
      const std::vector<Triple>& idx = shards_[i].index(perm);
      cut[i] = static_cast<size_t>(
          std::lower_bound(idx.begin() + part.lo, idx.begin() + part.hi, probe,
                           PermLess{perm}) -
          idx.begin());
    }
    emit(cut);
  }
  for (size_t i = 0; i < n; ++i) cut[i] = range.parts[i].hi;
  emit(cut);
  return out;
}

bool ShardedStore::Contains(TermId s, TermId p, TermId o) const {
  if (s == kNullTermId || static_cast<size_t>(s) >= owner_.size()) {
    return false;
  }
  return shards_[owner_[s]].Contains(s, p, o);
}

size_t ShardedStore::ApproxIndexBytes() const {
  size_t bytes = dict_->ApproxBytes();
  for (const TripleStore& s : shards_) bytes += s.ApproxIndexBytes();
  return bytes;
}

}  // namespace kgqan::store
