// Versioned on-disk snapshot container for the compact store.
//
// Layout (all integers little-endian, as written by the host — snapshots
// are a cold-start cache, not an interchange format):
//
//   [header]   magic "KGQC" | version u32 | section_count u32 | pad u32
//   [table]    section_count × { id u32, pad u32, offset u64, length u64,
//                                checksum u64 }
//   [payload]  sections, each 8-byte aligned at its table offset
//
// Checksums are FNV-1a 64 over the section payload and are verified when
// the file is opened, so a truncated or bit-flipped snapshot is rejected
// before any pointer into it escapes.  After validation the file stays
// mmap'd for the reader's lifetime and sections are served as zero-copy
// pointers into the mapping — the "instant cold start" path: no parsing,
// no sorting, page-in on demand.

#ifndef KGQAN_STORE_SNAPSHOT_H_
#define KGQAN_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgqan::store {

inline constexpr uint32_t kSnapshotMagic = 0x4351474Bu;  // "KGQC" LE
inline constexpr uint32_t kSnapshotVersion = 1;

// FNV-1a 64-bit over `len` bytes.
uint64_t SnapshotChecksum(const void* data, size_t len);

// Accumulates sections and writes them as one snapshot file.  Section
// payloads are referenced, not copied: they must stay alive until
// WriteTo() returns.
class SnapshotWriter {
 public:
  void AddSection(uint32_t id, const void* data, size_t len);

  // Writes header + table + payloads to `path` (replacing any existing
  // file).
  util::Status WriteTo(const std::string& path) const;

 private:
  struct PendingSection {
    uint32_t id;
    const uint8_t* data;
    size_t len;
  };
  std::vector<PendingSection> sections_;
};

// Opens, validates, and mmaps a snapshot; serves zero-copy section
// pointers.  The mapping lives as long as the reader, so the reader must
// outlive every structure borrowing from it.
class SnapshotReader {
 public:
  SnapshotReader() = default;
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;
  SnapshotReader(SnapshotReader&& other) noexcept;
  SnapshotReader& operator=(SnapshotReader&& other) noexcept;

  // Maps `path` and validates magic, version, table bounds, and every
  // section checksum.  On error the reader is left empty.
  util::Status Open(const std::string& path);

  // Pointer to section `id`'s payload (sets `*len`), or nullptr if the
  // snapshot has no such section.
  const uint8_t* Section(uint32_t id, size_t* len) const;

  bool is_open() const { return base_ != nullptr; }
  size_t file_bytes() const { return mapped_len_; }

 private:
  struct SectionEntry {
    uint32_t id;
    uint64_t offset;
    uint64_t length;
  };

  void Reset();

  const uint8_t* base_ = nullptr;
  size_t mapped_len_ = 0;
  std::vector<SectionEntry> sections_;
};

}  // namespace kgqan::store

#endif  // KGQAN_STORE_SNAPSHOT_H_
