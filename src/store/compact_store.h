// Compact store v2: dictionary-compressed, mmap-persistent CSR triple
// store — the drop-in second implementation behind the TripleStore
// contract (RDF-TDAA-shaped; see SNIPPETS.md snippets 2–3).
//
// Each of the six permutations is a CSR index instead of a sorted
// Triple array:
//
//   keys     sorted unique first key components (k1), one per run
//   offsets  CSR entry offsets: run r covers entries [offsets[r],
//            offsets[r+1])
//   blocks   byte offset into `stream` of every kBlock-th entry
//   stream   varint-encoded (k2, k3) pairs: absolute at every run start
//            and every block boundary (both positionally determined — no
//            flags), otherwise delta-coded against the previous entry
//            (varint(k2 - prev_k2); then k3 absolute if k2 advanced, else
//            varint(k3 - prev_k3))
//
// Entry indices are the public coordinate system: CompactScanRange counts
// compressed entries exactly like ScanRange counts triples, so
// Locate/Partition/MatchRange/EstimateMatches keep their v1 semantics and
// the morsel-sharded + vectorized evaluators and the planner's cardinality
// estimates run unchanged.  Locate is O(log runs + log blocks + kBlock):
// binary search on `keys`, then on block-first entries (each O(1)-decodable
// at a known byte offset), then at most one block of linear decode.
//
// The term dictionary is a FrontCodedDictionary built to preserve the v1
// TermDictionary's ids exactly, so index key order — and therefore every
// scan order, join order, and merged result — is byte-identical to v1 on
// the same graph (the differential battery's invariant).
//
// Live updates go through a small per-permutation sorted delta overlay
// merged at scan time; Erase of base triples triggers a rebuild (no
// tombstones, so range sizes stay exact).  Compact() folds the overlay
// (and the dictionary's extras) back into the compressed form.
//
// WriteSnapshot/LoadSnapshot persist everything into one checksummed
// section file (store/snapshot.h) that loads by mmap: all VecViews borrow
// from the mapping and the store is queryable without parsing or sorting.

#ifndef KGQAN_STORE_COMPACT_STORE_H_
#define KGQAN_STORE_COMPACT_STORE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "rdf/front_coded_dictionary.h"
#include "rdf/graph.h"
#include "store/snapshot.h"
#include "store/triple_store.h"
#include "util/status.h"
#include "util/varint.h"
#include "util/vec_view.h"

namespace kgqan::store {

// The compact analogue of ScanRange: a contiguous run of base entries in
// one permutation plus the matching slice of that permutation's overlay.
// size() counts exactly the matching triples (base and overlay are
// disjoint), preserving the planner's exact-estimate contract.
struct CompactScanRange {
  Perm perm = Perm::kSpo;
  size_t lo = 0;  // base entry indices [lo, hi)
  size_t hi = 0;
  size_t overlay_lo = 0;  // overlay indices [overlay_lo, overlay_hi)
  size_t overlay_hi = 0;
  // Decode hint, not part of the logical range: a run with
  // offsets[run_hint] <= lo (ideally lo's run).  Locate and Partition fill
  // it so MatchRange lands its cursor without a binary search over all
  // runs; SIZE_MAX means unknown.
  size_t run_hint = SIZE_MAX;

  size_t size() const { return (hi - lo) + (overlay_hi - overlay_lo); }
  bool empty() const { return size() == 0; }
};

class CompactStore {
 public:
  using Range = CompactScanRange;

  // Entries per absolute-decode block.  Larger blocks compress better
  // (fewer absolute restarts); smaller blocks make point lookups cheaper.
  static constexpr size_t kBlock = 8;

  CompactStore() = default;

  // Takes ownership of `graph`; duplicates are removed while encoding.
  // `build_threads` > 1 encodes the six permutations in parallel.
  explicit CompactStore(rdf::Graph graph, size_t build_threads = 1);

  CompactStore(const CompactStore&) = delete;
  CompactStore& operator=(const CompactStore&) = delete;
  CompactStore(CompactStore&&) = default;
  CompactStore& operator=(CompactStore&&) = default;

  const rdf::FrontCodedDictionary& dictionary() const { return dict_; }

  // Number of distinct triples (base + overlay).
  size_t size() const { return base_total_ + overlay_[0].size(); }

  // Inserts a batch of triples through the overlay (terms are interned;
  // duplicates ignored).  Returns the number of genuinely new triples.
  size_t Insert(const std::vector<std::array<rdf::Term, 3>>& triples);

  // Id-level insert for pre-interned triples: `fresh` must be sorted,
  // unique, and disjoint from the store.
  size_t InsertIds(std::vector<Triple> fresh);

  // Removes every triple matching the pattern.  Overlay victims are
  // removed in place; any base victim forces a rebuild of the compressed
  // indexes (exact range counts admit no tombstones).
  size_t Erase(TermId s, TermId p, TermId o);

  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    MatchRange(Locate(s, p, o), s, p, o, std::forward<Fn>(fn));
  }

  // Match restricted to `range`: an ordered two-cursor merge of the
  // decoded base run and the overlay slice, with the same residual
  // filtering as v1.  Scanning a Partition()'s slices back to back visits
  // exactly the Match() sequence.
  template <typename Fn>
  void MatchRange(const CompactScanRange& range, TermId s, TermId p, TermId o,
                  Fn&& fn) const {
    const Perm perm = range.perm;
    const PermIndex& pi = perms_[static_cast<size_t>(perm)];
    const std::vector<Triple>& ov = overlay_[static_cast<size_t>(perm)];
    if (range.overlay_lo >= range.overlay_hi) {
      // No overlay slice (the common case until live inserts happen):
      // skip the merge machinery and run the tight decode loop, with the
      // permutation dispatch hoisted out of it.
      if (range.lo >= range.hi) return;
      auto emit = [&](TermId ts, TermId tp, TermId to) {
        if (s != kNullTermId && ts != s) return true;
        if (p != kNullTermId && tp != p) return true;
        if (o != kNullTermId && to != o) return true;
        return static_cast<bool>(fn(Triple{ts, tp, to}));
      };
      const size_t hint = range.run_hint;
      switch (perm) {
        case Perm::kSpo:
          ScanBase(pi, range.lo, range.hi, hint,
                   [&](TermId a, TermId b, TermId c) { return emit(a, b, c); });
          break;
        case Perm::kSop:
          ScanBase(pi, range.lo, range.hi, hint,
                   [&](TermId a, TermId b, TermId c) { return emit(a, c, b); });
          break;
        case Perm::kPso:
          ScanBase(pi, range.lo, range.hi, hint,
                   [&](TermId a, TermId b, TermId c) { return emit(b, a, c); });
          break;
        case Perm::kPos:
          ScanBase(pi, range.lo, range.hi, hint,
                   [&](TermId a, TermId b, TermId c) { return emit(c, a, b); });
          break;
        case Perm::kOsp:
          ScanBase(pi, range.lo, range.hi, hint,
                   [&](TermId a, TermId b, TermId c) { return emit(b, c, a); });
          break;
        case Perm::kOps:
          ScanBase(pi, range.lo, range.hi, hint,
                   [&](TermId a, TermId b, TermId c) { return emit(c, b, a); });
          break;
      }
      return;
    }
    size_t be = range.lo;
    size_t oe = range.overlay_lo;
    Cursor cur;
    std::tuple<TermId, TermId, TermId> bkey;
    if (be < range.hi) {
      cur.SeekHinted(pi, be, range.run_hint);
      cur.Step();
      bkey = {cur.k1(), cur.k2, cur.k3};
    }
    while (be < range.hi || oe < range.overlay_hi) {
      bool take_base;
      if (be >= range.hi) {
        take_base = false;
      } else if (oe >= range.overlay_hi) {
        take_base = true;
      } else {
        // Keys are globally unique (base and overlay are disjoint triple
        // sets), so this comparison never ties.
        take_base = bkey < PermKey(perm, ov[oe]);
      }
      const Triple t = take_base
                           ? TripleFromPermKey(perm, std::get<0>(bkey),
                                               std::get<1>(bkey),
                                               std::get<2>(bkey))
                           : ov[oe];
      if (take_base) {
        ++be;
        if (be < range.hi) {
          cur.Step();
          bkey = {cur.k1(), cur.k2, cur.k3};
        }
      } else {
        ++oe;
      }
      // Residual check: components bound but not part of the located
      // prefix.
      if (s != kNullTermId && t.s != s) continue;
      if (p != kNullTermId && t.p != p) continue;
      if (o != kNullTermId && t.o != o) continue;
      if (!fn(t)) return;
    }
  }

  // Chooses the same permutation v1 would and returns the exact matching
  // range: base entry bounds plus the overlay slice.
  CompactScanRange Locate(TermId s, TermId p, TermId o) const;

  // Splits `range` into at most `max_parts` sub-ranges that cover it
  // exactly and in merged key order: the base run is split integer-wise
  // (v1's discipline) and the overlay is cut at each base boundary's key,
  // so concatenating the slices' MatchRange outputs reproduces the full
  // merge.
  std::vector<CompactScanRange> Partition(const CompactScanRange& range,
                                          size_t max_parts) const;

  std::vector<Triple> MatchAll(TermId s, TermId p, TermId o,
                               size_t limit = SIZE_MAX) const;

  size_t CountMatches(TermId s, TermId p, TermId o) const {
    return Locate(s, p, o).size();
  }

  // Exact cardinality for any bound-component subset — the planner
  // contract shared with v1.
  size_t EstimateMatches(TermId s, TermId p, TermId o) const {
    return Locate(s, p, o).size();
  }

  bool Contains(TermId s, TermId p, TermId o) const {
    return CountMatches(s, p, o) > 0;
  }

  // Folds the overlay and the dictionary's extras back into the
  // compressed representation.  No-op when there is nothing to fold.
  void Compact();

  // Compact()s, then persists dictionary + all six CSR indexes to `path`.
  util::Status WriteSnapshot(const std::string& path);

  // Replaces this store's contents with the snapshot at `path`, borrowing
  // all sections from the mmap (no parse, no sort).  On error the store is
  // left empty.
  util::Status LoadSnapshot(const std::string& path);

  // Byte accounting (satellite gauges + bench `store_bytes`).
  size_t index_bytes() const;  // compressed CSR payloads, all six perms
  size_t dict_bytes() const { return dict_.ApproxBytes(); }
  size_t overlay_triples() const { return overlay_[0].size(); }
  size_t overlay_bytes() const;
  size_t ApproxIndexBytes() const {
    return index_bytes() + dict_bytes() + overlay_bytes();
  }

 private:
  struct PermIndex {
    util::VecView<TermId> keys;
    util::VecView<uint32_t> offsets;
    util::VecView<uint64_t> blocks;
    util::VecView<uint8_t> stream;
  };

  // Sequential decoder over one permutation's stream.  Seek lands on an
  // arbitrary entry by decoding forward from its block boundary (at most
  // kBlock - 1 discarded entries); Step decodes the entry at `e` into
  // (k1(), k2, k3) and advances.
  struct Cursor {
    const PermIndex* pi = nullptr;
    size_t e = 0;    // next entry index to decode
    size_t run = 0;  // run of the most recently decoded entry
    size_t pos = 0;  // byte position in stream
    TermId k2 = 0;
    TermId k3 = 0;

    void Seek(const PermIndex& index, size_t target) {
      SeekHinted(index, target, SIZE_MAX);
    }

    // Seek with a known upper bound on the landing run: `run_hint` must be
    // a run with offsets[run_hint] <= target (e.g. the run containing
    // target).  The block start can precede the run start by at most
    // kBlock - 1 entries, so the hint is refined by a short backward scan
    // instead of a binary search over all runs — the difference between
    // O(log runs) and O(kBlock) per point probe.
    void SeekHinted(const PermIndex& index, size_t target, size_t run_hint) {
      pi = &index;
      const size_t b = target / kBlock;
      pos = index.blocks[b];
      e = b * kBlock;
      if (run_hint != SIZE_MAX) {
        run = run_hint;
        while (run > 0 && index.offsets[run] > e) --run;
      } else {
        run = static_cast<size_t>(std::upper_bound(index.offsets.begin(),
                                                   index.offsets.end(), e) -
                                  index.offsets.begin()) -
              1;
      }
      while (e < target) Step();
    }

    void Step() {
      while (pi->offsets[run + 1] <= e) ++run;
      const uint8_t* data = pi->stream.data();
      if (e % kBlock == 0 || e == pi->offsets[run]) {
        k2 = static_cast<TermId>(util::ReadVarint(data, &pos));
        k3 = static_cast<TermId>(util::ReadVarint(data, &pos));
      } else {
        const uint64_t d2 = util::ReadVarint(data, &pos);
        if (d2 != 0) {
          k2 += static_cast<TermId>(d2);
          k3 = static_cast<TermId>(util::ReadVarint(data, &pos));
        } else {
          k3 += static_cast<TermId>(util::ReadVarint(data, &pos));
        }
      }
      ++e;
    }

    TermId k1() const { return pi->keys[run]; }
  };

  // The hot scan loop: decodes base entries [lo, hi) of `pi`, calling
  // `emit(k1, k2, k3)` for each (false stops).  Run-segmented so the run
  // lookup, k1 load, and segment bound are hoisted out of the inner loop,
  // and the varint state lives in locals the compiler can keep in
  // registers (the member-based Cursor can't, because uint8_t loads alias
  // its fields).  Entries before `lo` in the starting block are decoded
  // and discarded (at most kBlock - 1).
  template <typename Emit>
  static void ScanBase(const PermIndex& pi, size_t lo, size_t hi,
                       size_t run_hint, Emit&& emit) {
    const uint8_t* ptr = pi.stream.data() + pi.blocks[lo / kBlock];
    size_t e = (lo / kBlock) * kBlock;
    // Run of the block-start entry `e` (once per scan, not per entry):
    // refined from the caller's hint when available — the block start can
    // precede the hinted run's start by at most kBlock - 1 entries.
    size_t run;
    if (run_hint != SIZE_MAX) {
      run = run_hint;
      while (run > 0 && pi.offsets[run] > e) --run;
    } else {
      run = static_cast<size_t>(std::upper_bound(pi.offsets.begin(),
                                                 pi.offsets.end(), e) -
                                pi.offsets.begin()) -
            1;
    }
    auto read = [&ptr]() {
      uint64_t v = *ptr & 0x7F;
      if ((*ptr++ & 0x80) != 0) {
        int shift = 7;
        uint8_t byte;
        do {
          byte = *ptr++;
          v |= static_cast<uint64_t>(byte & 0x7F) << shift;
          shift += 7;
        } while ((byte & 0x80) != 0);
      }
      return v;
    };
    TermId k2 = 0;
    TermId k3 = 0;
    while (e < hi) {
      const size_t run_end = pi.offsets[run + 1];
      const TermId k1 = pi.keys[run];
      const size_t seg_end = run_end < hi ? run_end : hi;
      bool at_run_start = e == pi.offsets[run];
      for (; e < seg_end; ++e) {
        if (at_run_start || e % kBlock == 0) {
          k2 = static_cast<TermId>(read());
          k3 = static_cast<TermId>(read());
        } else {
          const uint64_t d2 = read();
          if (d2 != 0) {
            k2 += static_cast<TermId>(d2);
            k3 = static_cast<TermId>(read());
          } else {
            k3 += static_cast<TermId>(read());
          }
        }
        at_run_start = false;
        if (e >= lo && !emit(k1, k2, k3)) return;
      }
      ++run;
    }
  }

  // Sorts/dedups `base` and re-encodes all six permutations (releasing
  // any snapshot mapping).  Does not touch the overlay or dictionary.
  void BuildFrom(std::vector<Triple> base, size_t build_threads);

  static PermIndex EncodePerm(Perm perm, const std::vector<Triple>& sorted);

  // All base triples in SPO order.
  std::vector<Triple> DecodeAll() const;

  // (k2 << 32 | k3) of the block-first entry of block `b` — O(1), the
  // substrate of binary search inside a run.
  static uint64_t CompositeAtBlock(const PermIndex& pi, size_t b);

  // First entry in [rlo, rhi) (a slice of run `run`) whose (k2, k3)
  // composite is >= target; rhi if none.
  static size_t LowerBoundEntry(const PermIndex& pi, size_t run, size_t rlo,
                                size_t rhi, uint64_t target);

  rdf::FrontCodedDictionary dict_;
  size_t base_total_ = 0;
  std::array<PermIndex, 6> perms_;
  // Delta overlay: per-permutation sorted (PermLess) copies of the live
  // inserts; overlay_[kSpo] doubles as the canonical overlay triple set.
  std::array<std::vector<Triple>, 6> overlay_;
  // Keeps a loaded snapshot's mapping alive while views borrow from it.
  SnapshotReader mapping_;
};

}  // namespace kgqan::store

#endif  // KGQAN_STORE_COMPACT_STORE_H_
