// In-memory triple store with sextuple indexing (Hexastore [59]).
//
// All six component orderings (SPO, SOP, PSO, POS, OSP, OPS) are kept as
// sorted arrays, so any triple pattern with any subset of bound components
// is answered by a binary search plus a contiguous scan — the "traditional
// lookup" indices that Sec. 5.2 of the paper relies on for the
// outgoingPredicate / incomingPredicate queries.

#ifndef KGQAN_STORE_TRIPLE_STORE_H_
#define KGQAN_STORE_TRIPLE_STORE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term_dictionary.h"

namespace kgqan::store {

using rdf::kNullTermId;
using rdf::TermId;
using rdf::Triple;

// Identifiers for the six permutations.  The enum value is the index into
// the internal index array.
enum class Perm : uint8_t { kSpo = 0, kSop, kPso, kPos, kOsp, kOps };

class TripleStore {
 public:
  // Takes ownership of `graph`; duplicates are removed while indexing.
  explicit TripleStore(rdf::Graph graph);

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  const rdf::TermDictionary& dictionary() const {
    return graph_.dictionary();
  }
  rdf::TermDictionary& mutable_dictionary() { return graph_.dictionary(); }

  // Number of distinct triples.
  size_t size() const { return indexes_[0].size(); }

  // Inserts a batch of triples (terms are interned into the store's
  // dictionary; duplicates are ignored).  Each permutation index is merged
  // in O(existing + new).  Returns the number of genuinely new triples.
  size_t Insert(const std::vector<std::array<rdf::Term, 3>>& triples);

  // Removes every triple matching the pattern (kNullTermId components are
  // wildcards).  Returns the number of removed triples.  Dictionary
  // entries are retained (terms may be referenced elsewhere).
  size_t Erase(TermId s, TermId p, TermId o);

  // Calls `fn(triple)` for every triple matching the pattern; kNullTermId
  // components are wildcards.  `fn` returns false to stop early.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    auto [perm, lo, hi] = Locate(s, p, o);
    const std::vector<Triple>& idx = indexes_[static_cast<size_t>(perm)];
    for (size_t i = lo; i < hi; ++i) {
      const Triple& t = idx[i];
      // Residual check: components bound but not part of the located prefix.
      if (s != kNullTermId && t.s != s) continue;
      if (p != kNullTermId && t.p != p) continue;
      if (o != kNullTermId && t.o != o) continue;
      if (!fn(t)) return;
    }
  }

  // Collects up to `limit` matching triples.
  std::vector<Triple> MatchAll(TermId s, TermId p, TermId o,
                               size_t limit = SIZE_MAX) const;

  // Number of matching triples.
  size_t CountMatches(TermId s, TermId p, TermId o) const;

  // True if the fully bound triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  // Distinct predicates appearing in triples with subject `v`
  // (outgoingPredicate(v) of Sec. 5.2) / with object `v`
  // (incomingPredicate(v)).
  std::vector<TermId> OutgoingPredicates(TermId v) const;
  std::vector<TermId> IncomingPredicates(TermId v) const;

  // Approximate bytes held by the six indices (dictionary excluded).
  size_t ApproxIndexBytes() const {
    return 6 * indexes_[0].capacity() * sizeof(Triple);
  }

 private:
  struct Range {
    Perm perm;
    size_t lo;
    size_t hi;
  };

  // Chooses the best permutation for the bound-component combination and
  // returns the [lo, hi) range of candidates in that index.
  Range Locate(TermId s, TermId p, TermId o) const;

  rdf::Graph graph_;
  // indexes_[Perm]; each holds all triples sorted in that key order.
  std::array<std::vector<Triple>, 6> indexes_;
};

}  // namespace kgqan::store

#endif  // KGQAN_STORE_TRIPLE_STORE_H_
