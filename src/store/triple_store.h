// In-memory triple store with sextuple indexing (Hexastore [59]).
//
// All six component orderings (SPO, SOP, PSO, POS, OSP, OPS) are kept as
// sorted arrays, so any triple pattern with any subset of bound components
// is answered by a binary search plus a contiguous scan — the "traditional
// lookup" indices that Sec. 5.2 of the paper relies on for the
// outgoingPredicate / incomingPredicate queries.

#ifndef KGQAN_STORE_TRIPLE_STORE_H_
#define KGQAN_STORE_TRIPLE_STORE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <tuple>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term_dictionary.h"

namespace kgqan::store {

using rdf::kNullTermId;
using rdf::TermId;
using rdf::Triple;

// Identifiers for the six permutations.  The enum value is the index into
// the internal index array.
enum class Perm : uint8_t { kSpo = 0, kSop, kPso, kPos, kOsp, kOps };

// Key extractor per permutation: the (k1, k2, k3) sort key of a triple in
// that index.  Keys are globally unique within one logical triple set (a
// permutation key permutes all three components of a distinct triple), so
// per-shard sorted runs merge into the single-store index order without
// ties — the property ShardedStore's ordered merge relies on.
inline std::tuple<TermId, TermId, TermId> PermKey(Perm perm, const Triple& t) {
  switch (perm) {
    case Perm::kSpo:
      return {t.s, t.p, t.o};
    case Perm::kSop:
      return {t.s, t.o, t.p};
    case Perm::kPso:
      return {t.p, t.s, t.o};
    case Perm::kPos:
      return {t.p, t.o, t.s};
    case Perm::kOsp:
      return {t.o, t.s, t.p};
    case Perm::kOps:
      return {t.o, t.p, t.s};
  }
  return {0, 0, 0};
}

// Inverse of PermKey: the triple whose PermKey under `perm` is (k1, k2, k3).
inline Triple TripleFromPermKey(Perm perm, TermId k1, TermId k2, TermId k3) {
  switch (perm) {
    case Perm::kSpo:
      return {k1, k2, k3};
    case Perm::kSop:
      return {k1, k3, k2};
    case Perm::kPso:
      return {k2, k1, k3};
    case Perm::kPos:
      return {k3, k1, k2};
    case Perm::kOsp:
      return {k2, k3, k1};
    case Perm::kOps:
      return {k3, k2, k1};
  }
  return {};
}

struct PermLess {
  Perm perm;
  bool operator()(const Triple& a, const Triple& b) const {
    return PermKey(perm, a) < PermKey(perm, b);
  }
};

// A contiguous run of candidate triples in one permutation index: the
// sorted [lo, hi) range whose key prefix matches a lookup pattern.  Every
// triple pattern lookup reduces to one of these; Partition() splits one
// into morsels for intra-query parallel scans.
struct ScanRange {
  Perm perm = Perm::kSpo;
  size_t lo = 0;
  size_t hi = 0;

  size_t size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};

class TripleStore {
 public:
  // The scan-range type evaluation code should name (ShardedStore exposes
  // its own Range; the evaluator is generic over both).
  using Range = ScanRange;

  // Takes ownership of `graph`; duplicates are removed while indexing.
  // `build_threads` > 1 sorts the six permutation indexes in parallel on a
  // transient pool (identical indexes, faster load for big KGs); 1 is the
  // unchanged serial build.
  explicit TripleStore(rdf::Graph graph, size_t build_threads = 1);

  // Shard constructor: indexes pre-interned id-triples against an external
  // dictionary owned by the caller (ShardedStore), which must outlive the
  // store.  Interning calls (Insert) are the owner's job; use InsertIds for
  // updates.
  TripleStore(std::vector<Triple> triples,
              const rdf::TermDictionary* shared_dictionary,
              size_t build_threads = 1);

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  const rdf::TermDictionary& dictionary() const {
    return shared_dict_ != nullptr ? *shared_dict_ : graph_.dictionary();
  }
  rdf::TermDictionary& mutable_dictionary() { return graph_.dictionary(); }

  // Number of distinct triples.
  size_t size() const { return indexes_[0].size(); }

  // Inserts a batch of triples (terms are interned into the store's
  // dictionary; duplicates are ignored).  Each permutation index is merged
  // in O(existing + new).  Returns the number of genuinely new triples.
  size_t Insert(const std::vector<std::array<rdf::Term, 3>>& triples);

  // Id-level insert for pre-interned triples (the shard update path):
  // `fresh` must be sorted, unique, and disjoint from the store.  Each
  // permutation index is merged in O(existing + new).
  size_t InsertIds(std::vector<Triple> fresh);

  // Removes every triple matching the pattern (kNullTermId components are
  // wildcards).  Returns the number of removed triples.  Dictionary
  // entries are retained (terms may be referenced elsewhere).
  size_t Erase(TermId s, TermId p, TermId o);

  // Calls `fn(triple)` for every triple matching the pattern; kNullTermId
  // components are wildcards.  `fn` returns false to stop early.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    MatchRange(Locate(s, p, o), s, p, o, std::forward<Fn>(fn));
  }

  // Match restricted to `range` (a Locate() result or one of its
  // Partition() slices for the same pattern).  Triples are visited in
  // index order, so scanning a partition's slices back to back visits
  // exactly the Match() sequence.
  template <typename Fn>
  void MatchRange(const ScanRange& range, TermId s, TermId p, TermId o,
                  Fn&& fn) const {
    const std::vector<Triple>& idx = indexes_[static_cast<size_t>(range.perm)];
    for (size_t i = range.lo; i < range.hi; ++i) {
      const Triple& t = idx[i];
      // Residual check: components bound but not part of the located prefix.
      if (s != kNullTermId && t.s != s) continue;
      if (p != kNullTermId && t.p != p) continue;
      if (o != kNullTermId && t.o != o) continue;
      if (!fn(t)) return;
    }
  }

  // Chooses the best permutation for the bound-component combination and
  // returns the sorted [lo, hi) candidate range in that index.  The range
  // is exact: every covered triple matches the pattern.
  ScanRange Locate(TermId s, TermId p, TermId o) const;

  // Splits `range` into at most `max_parts` contiguous sub-ranges that
  // cover it exactly, in order, each non-empty and balanced to within one
  // triple.  An empty range yields no parts.
  static std::vector<ScanRange> Partition(const ScanRange& range,
                                          size_t max_parts);

  // Collects up to `limit` matching triples.
  std::vector<Triple> MatchAll(TermId s, TermId p, TermId o,
                               size_t limit = SIZE_MAX) const;

  // Number of matching triples.
  size_t CountMatches(TermId s, TermId p, TermId o) const;

  // Cardinality estimate for the pattern: the located range width in the
  // best permutation, i.e. two binary searches and no scan.  Exact whenever
  // the bound components form that permutation's key prefix — which
  // Locate() guarantees for every bound-component subset — so this equals
  // CountMatches() but names the planner's contract: an O(log n)
  // per-permutation range size, never a residual-filtered count.
  size_t EstimateMatches(TermId s, TermId p, TermId o) const {
    return Locate(s, p, o).size();
  }

  // True if the fully bound triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  // Direct read access to one permutation index (sorted by PermKey) — the
  // substrate of ShardedStore's cross-shard ordered merge and key-boundary
  // partitioning.
  const std::vector<Triple>& index(Perm perm) const {
    return indexes_[static_cast<size_t>(perm)];
  }

  // Distinct predicates appearing in triples with subject `v`
  // (outgoingPredicate(v) of Sec. 5.2) / with object `v`
  // (incomingPredicate(v)).
  std::vector<TermId> OutgoingPredicates(TermId v) const;
  std::vector<TermId> IncomingPredicates(TermId v) const;

  // Approximate bytes held by the store: the actual capacity of each of
  // the six permutation indexes plus the term dictionary when the store
  // owns it (a shard's shared dictionary is accounted by its owner).
  size_t ApproxIndexBytes() const {
    size_t bytes =
        shared_dict_ == nullptr ? graph_.dictionary().ApproxBytes() : 0;
    for (const std::vector<Triple>& index : indexes_) {
      bytes += index.capacity() * sizeof(Triple);
    }
    return bytes;
  }

 private:
  // Sorts/dedups `base` into the canonical SPO index and builds the five
  // other permutations from it.
  void BuildIndexes(std::vector<Triple> base, size_t build_threads);

  rdf::Graph graph_;
  // Externally owned dictionary of a ShardedStore shard; null when the
  // store owns its own terms (graph_).
  const rdf::TermDictionary* shared_dict_ = nullptr;
  // indexes_[Perm]; each holds all triples sorted in that key order.
  std::array<std::vector<Triple>, 6> indexes_;
};

}  // namespace kgqan::store

#endif  // KGQAN_STORE_TRIPLE_STORE_H_
