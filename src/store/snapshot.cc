#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace kgqan::store {

namespace {

constexpr size_t kHeaderBytes = 16;         // magic, version, count, pad
constexpr size_t kTableEntryBytes = 32;     // id, pad, offset, length, checksum

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

}  // namespace

uint64_t SnapshotChecksum(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void SnapshotWriter::AddSection(uint32_t id, const void* data, size_t len) {
  sections_.push_back({id, static_cast<const uint8_t*>(data), len});
}

util::Status SnapshotWriter::WriteTo(const std::string& path) const {
  // Lay out payload offsets: header, table, then 8-byte-aligned sections.
  const size_t table_bytes = sections_.size() * kTableEntryBytes;
  size_t offset = kHeaderBytes + table_bytes;

  std::vector<uint8_t> head;
  head.reserve(kHeaderBytes + table_bytes);
  AppendU32(&head, kSnapshotMagic);
  AppendU32(&head, kSnapshotVersion);
  AppendU32(&head, static_cast<uint32_t>(sections_.size()));
  AppendU32(&head, 0);

  std::vector<size_t> offsets(sections_.size());
  for (size_t i = 0; i < sections_.size(); ++i) {
    offset = (offset + 7) & ~size_t{7};
    offsets[i] = offset;
    AppendU32(&head, sections_[i].id);
    AppendU32(&head, 0);
    AppendU64(&head, offset);
    AppendU64(&head, sections_[i].len);
    AppendU64(&head, SnapshotChecksum(sections_[i].data, sections_[i].len));
    offset += sections_[i].len;
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::Internal("snapshot: cannot open " + path +
                                  " for writing");
  }
  bool ok = std::fwrite(head.data(), 1, head.size(), f) == head.size();
  size_t written = head.size();
  static constexpr uint8_t kZeros[8] = {};
  for (size_t i = 0; ok && i < sections_.size(); ++i) {
    const size_t pad = offsets[i] - written;
    ok = std::fwrite(kZeros, 1, pad, f) == pad;
    if (ok && sections_[i].len > 0) {
      ok = std::fwrite(sections_[i].data, 1, sections_[i].len, f) ==
           sections_[i].len;
    }
    written = offsets[i] + sections_[i].len;
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(path.c_str());
    return util::Status::Internal("snapshot: short write to " + path);
  }
  return util::Status::Ok();
}

SnapshotReader::~SnapshotReader() { Reset(); }

SnapshotReader::SnapshotReader(SnapshotReader&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      mapped_len_(std::exchange(other.mapped_len_, 0)),
      sections_(std::move(other.sections_)) {}

SnapshotReader& SnapshotReader::operator=(SnapshotReader&& other) noexcept {
  if (this != &other) {
    Reset();
    base_ = std::exchange(other.base_, nullptr);
    mapped_len_ = std::exchange(other.mapped_len_, 0);
    sections_ = std::move(other.sections_);
  }
  return *this;
}

void SnapshotReader::Reset() {
  if (base_ != nullptr) {
    munmap(const_cast<uint8_t*>(base_), mapped_len_);
  }
  base_ = nullptr;
  mapped_len_ = 0;
  sections_.clear();
}

util::Status SnapshotReader::Open(const std::string& path) {
  Reset();
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::NotFound("snapshot: cannot open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return util::Status::Internal("snapshot: fstat failed for " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len < kHeaderBytes) {
    close(fd);
    return util::Status::ParseError("snapshot: file too small: " + path);
  }
  void* map = mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) {
    return util::Status::Internal("snapshot: mmap failed for " + path);
  }
  base_ = static_cast<const uint8_t*>(map);
  mapped_len_ = len;

  if (ReadU32(base_) != kSnapshotMagic) {
    Reset();
    return util::Status::ParseError("snapshot: bad magic in " + path);
  }
  if (ReadU32(base_ + 4) != kSnapshotVersion) {
    Reset();
    return util::Status::ParseError("snapshot: unsupported version in " +
                                    path);
  }
  const uint32_t count = ReadU32(base_ + 8);
  if (kHeaderBytes + static_cast<size_t>(count) * kTableEntryBytes > len) {
    Reset();
    return util::Status::ParseError("snapshot: truncated section table in " +
                                    path);
  }
  // Strict layout validation: beyond per-section checksums, every byte of
  // the file must be accounted for — header pad, table-entry pads, and the
  // zeroed alignment gaps between sections — so any corruption is
  // detected, not just corruption inside section payloads.
  if (ReadU32(base_ + 12) != 0) {
    Reset();
    return util::Status::ParseError("snapshot: nonzero header padding in " +
                                    path);
  }
  sections_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* entry = base_ + kHeaderBytes + i * kTableEntryBytes;
    SectionEntry sec;
    sec.id = ReadU32(entry);
    sec.offset = ReadU64(entry + 8);
    sec.length = ReadU64(entry + 16);
    const uint64_t checksum = ReadU64(entry + 24);
    if (ReadU32(entry + 4) != 0) {
      Reset();
      return util::Status::ParseError("snapshot: nonzero table padding in " +
                                      path);
    }
    if (sec.offset > len || sec.length > len - sec.offset ||
        (sec.offset & 7) != 0) {
      Reset();
      return util::Status::ParseError("snapshot: section out of bounds in " +
                                      path);
    }
    if (SnapshotChecksum(base_ + sec.offset, sec.length) != checksum) {
      Reset();
      return util::Status::ParseError("snapshot: checksum mismatch in " +
                                      path);
    }
    sections_.push_back(sec);
  }
  // The sections (in file order) must tile the byte range after the table
  // exactly, with zero bytes in the alignment gaps and nothing trailing.
  std::vector<SectionEntry> by_offset = sections_;
  std::sort(by_offset.begin(), by_offset.end(),
            [](const SectionEntry& a, const SectionEntry& b) {
              return a.offset < b.offset;
            });
  size_t cursor = kHeaderBytes + static_cast<size_t>(count) * kTableEntryBytes;
  for (const SectionEntry& sec : by_offset) {
    if (sec.offset < cursor) {
      Reset();
      return util::Status::ParseError("snapshot: overlapping sections in " +
                                      path);
    }
    for (size_t b = cursor; b < sec.offset; ++b) {
      if (base_[b] != 0) {
        Reset();
        return util::Status::ParseError(
            "snapshot: nonzero alignment padding in " + path);
      }
    }
    cursor = sec.offset + sec.length;
  }
  if (cursor != len) {
    Reset();
    return util::Status::ParseError("snapshot: trailing bytes in " + path);
  }
  return util::Status::Ok();
}

const uint8_t* SnapshotReader::Section(uint32_t id, size_t* len) const {
  for (const SectionEntry& sec : sections_) {
    if (sec.id == id) {
      *len = sec.length;
      return base_ + sec.offset;
    }
  }
  *len = 0;
  return nullptr;
}

}  // namespace kgqan::store
