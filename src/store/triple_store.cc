#include "store/triple_store.h"

#include <array>
#include <iterator>
#include <tuple>

#include "util/thread_pool.h"

namespace kgqan::store {

void TripleStore::BuildIndexes(std::vector<Triple> base,
                               size_t build_threads) {
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());
  indexes_[0] = std::move(base);  // SPO is the canonical sort order.
  auto build_one = [this](size_t i) {
    indexes_[i] = indexes_[0];
    std::sort(indexes_[i].begin(), indexes_[i].end(),
              PermLess{static_cast<Perm>(i)});
  };
  if (build_threads > 1) {
    // The five non-canonical permutation sorts are independent: copy and
    // sort each on a transient pool (at most five tasks; the constructing
    // thread participates via ParallelFor).
    util::ThreadPool pool(std::min<size_t>(build_threads, 5) - 1);
    util::ParallelFor(&pool, 5, [&](size_t i) { build_one(i + 1); });
  } else {
    for (size_t i = 1; i < 6; ++i) build_one(i);
  }
}

TripleStore::TripleStore(rdf::Graph graph, size_t build_threads)
    : graph_(std::move(graph)) {
  BuildIndexes({graph_.triples().begin(), graph_.triples().end()},
               build_threads);
}

TripleStore::TripleStore(std::vector<Triple> triples,
                         const rdf::TermDictionary* shared_dictionary,
                         size_t build_threads)
    : shared_dict_(shared_dictionary) {
  BuildIndexes(std::move(triples), build_threads);
}

size_t TripleStore::Insert(
    const std::vector<std::array<rdf::Term, 3>>& triples) {
  // Intern and deduplicate the batch against the existing store.
  std::vector<Triple> fresh;
  fresh.reserve(triples.size());
  for (const auto& t : triples) {
    Triple id_triple{graph_.dictionary().Intern(t[0]),
                     graph_.dictionary().Intern(t[1]),
                     graph_.dictionary().Intern(t[2])};
    if (!Contains(id_triple.s, id_triple.p, id_triple.o)) {
      fresh.push_back(id_triple);
    }
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  return InsertIds(std::move(fresh));
}

size_t TripleStore::InsertIds(std::vector<Triple> fresh) {
  if (fresh.empty()) return 0;
  for (size_t i = 0; i < 6; ++i) {
    Perm perm = static_cast<Perm>(i);
    std::vector<Triple> batch = fresh;
    std::sort(batch.begin(), batch.end(), PermLess{perm});
    std::vector<Triple> merged;
    merged.reserve(indexes_[i].size() + batch.size());
    std::merge(indexes_[i].begin(), indexes_[i].end(), batch.begin(),
               batch.end(), std::back_inserter(merged), PermLess{perm});
    indexes_[i] = std::move(merged);
  }
  return fresh.size();
}

size_t TripleStore::Erase(TermId s, TermId p, TermId o) {
  // Collect the victims from the canonical index, then filter each
  // permutation (erase-remove keeps the sorted order intact).
  std::vector<Triple> victims = MatchAll(s, p, o);
  if (victims.empty()) return 0;
  std::sort(victims.begin(), victims.end());
  auto is_victim = [&](const Triple& t) {
    return std::binary_search(victims.begin(), victims.end(), t);
  };
  for (auto& index : indexes_) {
    index.erase(std::remove_if(index.begin(), index.end(), is_victim),
                index.end());
  }
  return victims.size();
}

ScanRange TripleStore::Locate(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;

  // Pick a permutation whose key prefix covers the bound components.
  Perm perm;
  int prefix;  // Number of leading key components that are bound.
  if (bs && bp && bo) {
    perm = Perm::kSpo;
    prefix = 3;
  } else if (bs && bp) {
    perm = Perm::kSpo;
    prefix = 2;
  } else if (bs && bo) {
    perm = Perm::kSop;
    prefix = 2;
  } else if (bp && bo) {
    perm = Perm::kPos;
    prefix = 2;
  } else if (bs) {
    perm = Perm::kSpo;
    prefix = 1;
  } else if (bp) {
    perm = Perm::kPso;
    prefix = 1;
  } else if (bo) {
    perm = Perm::kOsp;
    prefix = 1;
  } else {
    return ScanRange{Perm::kSpo, 0, indexes_[0].size()};
  }

  const std::vector<Triple>& idx = indexes_[static_cast<size_t>(perm)];
  Triple probe{s, p, o};
  auto cmp = [perm, prefix](const Triple& a, const Triple& b) {
    auto ka = PermKey(perm, a);
    auto kb = PermKey(perm, b);
    if (std::get<0>(ka) != std::get<0>(kb)) {
      return std::get<0>(ka) < std::get<0>(kb);
    }
    if (prefix >= 2 && std::get<1>(ka) != std::get<1>(kb)) {
      return std::get<1>(ka) < std::get<1>(kb);
    }
    if (prefix >= 3 && std::get<2>(ka) != std::get<2>(kb)) {
      return std::get<2>(ka) < std::get<2>(kb);
    }
    return false;
  };
  auto lo = std::lower_bound(idx.begin(), idx.end(), probe, cmp);
  auto hi = std::upper_bound(idx.begin(), idx.end(), probe, cmp);
  return ScanRange{perm, static_cast<size_t>(lo - idx.begin()),
                   static_cast<size_t>(hi - idx.begin())};
}

std::vector<ScanRange> TripleStore::Partition(const ScanRange& range,
                                              size_t max_parts) {
  std::vector<ScanRange> parts;
  const size_t width = range.size();
  if (width == 0 || max_parts == 0) return parts;
  const size_t k = std::min(max_parts, width);
  parts.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t lo = range.lo + width * i / k;
    const size_t hi = range.lo + width * (i + 1) / k;
    if (hi > lo) parts.push_back(ScanRange{range.perm, lo, hi});
  }
  return parts;
}

std::vector<Triple> TripleStore::MatchAll(TermId s, TermId p, TermId o,
                                          size_t limit) const {
  std::vector<Triple> out;
  Match(s, p, o, [&](const Triple& t) {
    out.push_back(t);
    return out.size() < limit;
  });
  return out;
}

size_t TripleStore::CountMatches(TermId s, TermId p, TermId o) const {
  // The located range is exact (no residual filtering needed) whenever the
  // bound components form the permutation prefix, which Locate guarantees.
  auto [perm, lo, hi] = Locate(s, p, o);
  (void)perm;
  return hi - lo;
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  return CountMatches(s, p, o) > 0;
}

std::vector<TermId> TripleStore::OutgoingPredicates(TermId v) const {
  // SPO index: triples with subject v are contiguous; predicates are sorted
  // within the run, so dedup is a simple adjacent check.
  std::vector<TermId> preds;
  Match(v, kNullTermId, kNullTermId, [&](const Triple& t) {
    if (preds.empty() || preds.back() != t.p) preds.push_back(t.p);
    return true;
  });
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

std::vector<TermId> TripleStore::IncomingPredicates(TermId v) const {
  std::vector<TermId> preds;
  Match(kNullTermId, kNullTermId, v, [&](const Triple& t) {
    preds.push_back(t.p);
    return true;
  });
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

}  // namespace kgqan::store
