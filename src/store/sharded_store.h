// Subject-hash-partitioned triple store: N in-process TripleStore shards
// behind the same lookup API (wukong-style partitioning, in-process first;
// socket transport is the ROADMAP follow-up).
//
// Byte-identity with the single-store path is structural, not statistical:
//  - one shared TermDictionary means identical TermIds everywhere (and the
//    evaluator's VALUES overlay base, MaxId()+1, is identical too);
//  - permutation keys are globally unique (a PermKey permutes all three
//    components of a distinct triple), so the k-way merge of per-shard
//    sorted runs reproduces the single index order without ties;
//  - Locate() range sizes sum to the single-store range size exactly, so
//    the cardinality planner picks the same join order by construction;
//  - Partition() cuts at shared key boundaries, so the morsel-merge
//    discipline (PR 5) carries over unchanged.
//
// Single-subject patterns are routed to the owning shard; everything else
// fans out.  Routing/fan-out/merge counters are plain relaxed atomics here
// (the store layer must not depend on obs); serve::ShardedEndpoint publishes
// them as sparql.shard.* metrics.

#ifndef KGQAN_STORE_SHARDED_STORE_H_
#define KGQAN_STORE_SHARDED_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term_dictionary.h"
#include "store/triple_store.h"

namespace kgqan::store {

// Deterministic shard owner of a subject term: FNV-1a over the term's
// content (kind + value + datatype + lang).  Independent of TermIds so the
// assignment is stable across interning orders and processes.
size_t SubjectShard(const rdf::Term& term, size_t num_shards);

// Per-shard ScanRange sequence with inline storage: the evaluator's
// probe-join fallback calls Locate once per input row, so the common
// shard counts must not pay a heap allocation per probe.
class ShardParts {
 public:
  static constexpr size_t kInline = 8;

  void assign(size_t n, const ScanRange& value) {
    size_ = n;
    if (n > kInline) {
      heap_.assign(n, value);
      return;
    }
    heap_.clear();
    for (size_t i = 0; i < n; ++i) inline_[i] = value;
  }
  void resize(size_t n) { assign(n, ScanRange{}); }

  size_t size() const { return size_; }
  ScanRange& operator[](size_t i) {
    return size_ > kInline ? heap_[i] : inline_[i];
  }
  const ScanRange& operator[](size_t i) const {
    return size_ > kInline ? heap_[i] : inline_[i];
  }

 private:
  std::array<ScanRange, kInline> inline_{};
  std::vector<ScanRange> heap_;
  size_t size_ = 0;
};

// A located candidate set across shards: one ScanRange per shard, all in
// the same permutation.  `total` is the summed width — the exact match
// count, same contract as ScanRange::size() on a single store.
struct ShardedScanRange {
  Perm perm = Perm::kSpo;
  ShardParts parts;  // indexed by shard
  size_t total = 0;

  size_t size() const { return total; }
  bool empty() const { return total == 0; }
};

class ShardedStore {
 public:
  using Range = ShardedScanRange;

  // Takes ownership of `graph`: its dictionary becomes the shared
  // dictionary, its triples are partitioned by subject hash, and each
  // shard's six permutation indexes are built (with `build_threads`-way
  // parallel sorts per shard when > 1).
  ShardedStore(rdf::Graph graph, size_t num_shards, size_t build_threads = 1);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  const rdf::TermDictionary& dictionary() const { return *dict_; }

  size_t num_shards() const { return shards_.size(); }
  const TripleStore& shard(size_t i) const { return shards_[i]; }

  // Total distinct triples across shards.
  size_t size() const;

  // Interns and inserts a batch, replicating TripleStore::Insert's global
  // interning order exactly (so post-update TermIds match the single-store
  // path), then routes each fresh triple to its owning shard.  Returns the
  // number of genuinely new triples.
  size_t Insert(const std::vector<std::array<rdf::Term, 3>>& triples);

  // Chooses the permutation exactly as TripleStore::Locate (the choice
  // depends only on the bound-component pattern, so it is identical across
  // shards) and returns the per-shard ranges.  A bound subject routes to
  // the owning shard; otherwise the lookup fans out to every shard.
  ShardedScanRange Locate(TermId s, TermId p, TermId o) const;

  // Calls `fn(triple)` for every match in global permutation-key order —
  // byte-identical to the single-store visit sequence.  `fn` returns false
  // to stop early.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    MatchRange(Locate(s, p, o), s, p, o, std::forward<Fn>(fn));
  }

  // Match restricted to `range` (a Locate() result or one of its
  // Partition() morsels).  One live shard degrades to that shard's
  // contiguous scan; otherwise the per-shard sorted runs are k-way merged
  // by PermKey, which reproduces the single-store index order (keys are
  // globally unique, so the merge is tie-free).
  template <typename Fn>
  void MatchRange(const ShardedScanRange& range, TermId s, TermId p, TermId o,
                  Fn&& fn) const {
    size_t nonempty = 0;
    size_t last = 0;
    for (size_t i = 0; i < range.parts.size(); ++i) {
      if (!range.parts[i].empty()) {
        ++nonempty;
        last = i;
      }
    }
    if (nonempty == 0) return;
    if (nonempty == 1) {
      shards_[last].MatchRange(range.parts[last], s, p, o,
                               std::forward<Fn>(fn));
      return;
    }
    merged_scans_.fetch_add(1, std::memory_order_relaxed);

    // Run-based merge.  Subject-hash partitioning keeps one subject's
    // triples in one shard, so in any permutation the winning cursor owns
    // a contiguous *run* of the merged order (at least that subject's
    // group).  Instead of re-comparing keys per row, each round picks the
    // minimum cursor, gallops to the end of its run — the first position
    // whose key passes the runner-up's cached key — and flat-scans the
    // run exactly like the single-store MatchRange.  Per-row merge
    // overhead is then O(log run / run), near zero for real runs.
    struct Cursor {
      const std::vector<Triple>* idx;
      size_t pos;
      size_t hi;
      uint64_t key_hi;  // (k1 << 32) | k2 of the current PermKey.
      TermId key_lo;    // k3.
    };
    const Perm perm = range.perm;
    auto load_key = [perm](Cursor& c) {
      const auto [k1, k2, k3] = PermKey(perm, (*c.idx)[c.pos]);
      c.key_hi = (uint64_t{k1} << 32) | k2;
      c.key_lo = k3;
    };
    auto key_less = [](const Cursor& a, const Cursor& b) {
      return a.key_hi != b.key_hi ? a.key_hi < b.key_hi
                                  : a.key_lo < b.key_lo;
    };
    // First position in (lo, hi) whose key exceeds (bound_hi, bound_lo):
    // galloping bracket, then binary search inside it.  Keys are globally
    // unique, so "below the bound" is a strict, exact test.
    auto run_end = [perm](const std::vector<Triple>& idx, size_t lo,
                          size_t hi, uint64_t bound_hi, TermId bound_lo) {
      auto below = [&](size_t i) {
        const auto [k1, k2, k3] = PermKey(perm, idx[i]);
        const uint64_t khi = (uint64_t{k1} << 32) | k2;
        return khi != bound_hi ? khi < bound_hi : k3 < bound_lo;
      };
      // Linear probe first: runs are usually just one subject group (a
      // few rows), so the boundary is almost always within reach and a
      // gallop's extra probes would cost more than they save.
      constexpr size_t kLinearProbe = 8;
      const size_t linear_hi = std::min(hi, lo + kLinearProbe);
      size_t cur = lo + 1;  // idx[lo] is the winner: known below the bound.
      for (; cur < linear_hi; ++cur) {
        if (!below(cur)) return cur;
      }
      if (cur >= hi) return hi;
      if (!below(cur)) return cur;
      size_t step = 1;
      while (cur + step < hi && below(cur + step)) {
        cur += step;
        step <<= 1;
      }
      size_t l = cur + 1;
      size_t r = std::min(hi, cur + step);
      while (l < r) {
        const size_t m = l + (r - l) / 2;
        if (below(m)) {
          l = m + 1;
        } else {
          r = m;
        }
      }
      return l;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(nonempty);
    for (size_t i = 0; i < range.parts.size(); ++i) {
      const ScanRange& part = range.parts[i];
      if (part.empty()) continue;
      cursors.push_back(
          Cursor{&shards_[i].index(range.perm), part.lo, part.hi, 0, 0});
      load_key(cursors.back());
    }
    while (!cursors.empty()) {
      size_t best = 0;
      size_t second = SIZE_MAX;
      for (size_t c = 1; c < cursors.size(); ++c) {
        if (key_less(cursors[c], cursors[best])) {
          second = best;
          best = c;
        } else if (second == SIZE_MAX ||
                   key_less(cursors[c], cursors[second])) {
          second = c;
        }
      }
      Cursor& winner = cursors[best];
      const size_t end =
          second == SIZE_MAX
              ? winner.hi
              : run_end(*winner.idx, winner.pos, winner.hi,
                        cursors[second].key_hi, cursors[second].key_lo);
      for (size_t i = winner.pos; i < end; ++i) {
        const Triple& t = (*winner.idx)[i];
        // Residual check, mirroring TripleStore::MatchRange.
        if ((s == kNullTermId || t.s == s) &&
            (p == kNullTermId || t.p == p) &&
            (o == kNullTermId || t.o == o)) {
          if (!fn(t)) return;
        }
      }
      winner.pos = end;
      if (end >= winner.hi) {
        cursors[best] = cursors.back();
        cursors.pop_back();
      } else {
        load_key(winner);
      }
    }
  }

  // Splits `range` into at most `max_parts` morsels that cover it exactly
  // and in key order.  Cuts are made at shared permutation-key boundaries
  // (per-shard lower_bound of the same key), so concatenating the morsels'
  // MatchRange merges reproduces the full merge — the invariant the
  // evaluator's ordered morsel merge relies on.
  std::vector<ShardedScanRange> Partition(const ShardedScanRange& range,
                                          size_t max_parts) const;

  // Exact match count: the summed per-shard range widths (each exact, same
  // argument as TripleStore::EstimateMatches) — so the planner sees the
  // same cardinalities as on the single store.
  size_t EstimateMatches(TermId s, TermId p, TermId o) const {
    return Locate(s, p, o).total;
  }

  // True if the fully bound triple exists (answered by the owning shard).
  bool Contains(TermId s, TermId p, TermId o) const;

  // Approximate bytes: shared dictionary + all shard indexes.
  size_t ApproxIndexBytes() const;

  // Routing statistics (relaxed; include planner estimate probes).
  uint64_t routed_lookups() const {
    return routed_lookups_.load(std::memory_order_relaxed);
  }
  uint64_t fanout_lookups() const {
    return fanout_lookups_.load(std::memory_order_relaxed);
  }
  uint64_t merged_scans() const {
    return merged_scans_.load(std::memory_order_relaxed);
  }
  uint64_t shard_lookups(size_t i) const {
    return shard_lookups_[i].load(std::memory_order_relaxed);
  }

 private:
  // Grows owner_ to cover every interned id (called after interning).
  void ExtendOwners();

  size_t num_shards_ = 1;
  std::unique_ptr<rdf::TermDictionary> dict_;
  std::vector<TripleStore> shards_;
  // owner_[id] = shard owning triples whose subject is `id`; computed for
  // every interned term so bound-subject lookups route in O(1).
  std::vector<uint8_t> owner_;

  mutable std::atomic<uint64_t> routed_lookups_{0};
  mutable std::atomic<uint64_t> fanout_lookups_{0};
  mutable std::atomic<uint64_t> merged_scans_{0};
  mutable std::unique_ptr<std::atomic<uint64_t>[]> shard_lookups_;
};

}  // namespace kgqan::store

#endif  // KGQAN_STORE_SHARDED_STORE_H_
