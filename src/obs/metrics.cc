#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_util.h"

namespace kgqan::obs {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return std::string(buffer);
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Target rank in (0, count]; the bucket containing it supplies the
  // interpolation interval.
  double target = std::max(1.0, p / 100.0 * double(count));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    double before = double(cumulative);
    cumulative += counts[b];
    if (double(cumulative) < target) continue;
    double lower = b == 0 ? 0.0 : bounds[b - 1];
    // The overflow bucket has no upper bound; the observed max stands in.
    double upper = b < bounds.size() ? bounds[b] : max;
    double fraction = (target - before) / double(counts[b]);
    double value = lower + fraction * (upper - lower);
    return std::clamp(value, min, max);
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBucketsMs();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

std::vector<double> Histogram::DefaultLatencyBucketsMs() {
  return {0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,   25.0,
          50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
}

void Histogram::Record(double value) {
  // Buckets are (bounds[b-1], bounds[b]]: a value equal to a bound lands in
  // the bucket it is the upper bound of, matching Percentile's intervals.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.min =
      snapshot.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  snapshot.max =
      snapshot.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name,
                                 GaugeSnapshot{gauge->Value(), gauge->Max()});
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string FormatMetricsTable(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(line, sizeof(line), "  %-40s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, gauge] : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %12lld  (max %lld)\n",
                    name.c_str(), static_cast<long long>(gauge.value),
                    static_cast<long long>(gauge.max));
      out += line;
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    std::snprintf(line, sizeof(line), "  %-40s %10s %10s %10s %10s %10s %10s\n",
                  "", "count", "mean", "p50", "p90", "p95", "p99");
    out += line;
    for (const auto& [name, hist] : snapshot.histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-40s %10llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    name.c_str(), static_cast<unsigned long long>(hist.count),
                    hist.Mean(), hist.Percentile(50), hist.Percentile(90),
                    hist.Percentile(95), hist.Percentile(99));
      out += line;
    }
  }
  return out;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"value\":" + std::to_string(gauge.value) +
           ",\"max\":" + std::to_string(gauge.max) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":" + std::to_string(hist.count) +
           ",\"sum\":" + FormatDouble(hist.sum) +
           ",\"mean\":" + FormatDouble(hist.Mean()) +
           ",\"p50\":" + FormatDouble(hist.Percentile(50)) +
           ",\"p90\":" + FormatDouble(hist.Percentile(90)) +
           ",\"p95\":" + FormatDouble(hist.Percentile(95)) +
           ",\"p99\":" + FormatDouble(hist.Percentile(99)) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace kgqan::obs
