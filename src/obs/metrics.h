// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms with percentile extraction, collected in a MetricsRegistry
// and snapshot-exportable as a human-readable table or JSON.
//
// Metric objects are lock-free on the record path (relaxed atomics); the
// registry mutex is taken only on name lookup, so instrumented components
// resolve their metrics once (constructor or function-local static) and
// then record without synchronization.  Registry entries are never erased
// — Reset() zeroes values in place — so resolved references stay valid for
// the process lifetime.

#ifndef KGQAN_OBS_METRICS_H_
#define KGQAN_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kgqan::obs {

class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (e.g. thread-pool queue depth) with a high-water
// mark.  Add/Sub are relaxed; Max() is monotone between Resets and never
// reads below the level concurrently observable via Value(): Sub routes
// through Add so a negative delta still publishes the post-update level,
// and Reset reseeds the high-water from the live value rather than zero,
// so a Reset racing concurrent Adds cannot strand max_ below value_.
class Gauge {
 public:
  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  void Sub(int64_t delta) { Add(-delta); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  // The high-water mark can lag the live value for one instruction while a
  // racing Add publishes its CAS; clamping at read time keeps the reported
  // mark ≥ Value() under every interleaving.
  int64_t Max() const {
    int64_t value = value_.load(std::memory_order_relaxed);
    int64_t max = max_.load(std::memory_order_relaxed);
    return max > value ? max : value;
  }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(value_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Copyable point-in-time view of a Histogram; all derived statistics
// (mean, percentiles) are computed here so results of concurrent runs can
// be stored and compared.
struct HistogramSnapshot {
  std::vector<double> bounds;    // Ascending bucket upper bounds.
  std::vector<uint64_t> counts;  // bounds.size() + 1 (last = overflow).
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // Observed extremes (0 when empty).
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / double(count); }

  // Estimated p-th percentile (p in [0, 100]) by linear interpolation
  // inside the bucket holding the target rank, clamped to the observed
  // [min, max] — so a single-sample histogram returns the sample exactly
  // and the overflow bucket cannot extrapolate past the largest value.
  double Percentile(double p) const;
};

class Histogram {
 public:
  // `bounds` are ascending bucket upper bounds; an implicit overflow
  // bucket covers (bounds.back(), +inf).
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  // Default latency buckets in milliseconds: 50 µs .. 10 s, roughly
  // 1-2.5-5 per decade.
  static std::vector<double> DefaultLatencyBucketsMs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

struct GaugeSnapshot {
  int64_t value = 0;
  int64_t max = 0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeSnapshot>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& Global();

  // Find-or-create by name; returned references are valid for the
  // registry's lifetime.  For histograms, `bounds` applies only when the
  // name is first created.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every metric in place (entries and resolved references stay
  // valid).  For benchmarks/tests that want per-run numbers.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Plain-text table of a snapshot (counters, gauges, then histograms with
// count/mean/p50/p90/p95/p99).
std::string FormatMetricsTable(const MetricsSnapshot& snapshot);

// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

}  // namespace kgqan::obs

#endif  // KGQAN_OBS_METRICS_H_
