// Head sampling for always-on tracing: decides, at request admission, which
// requests are upgraded from counters-only to a full span tree.  Two
// composed gates keep the cost of tracing bounded on a saturated server:
//
//  1. deterministic 1-in-N (`sample_every`) — a relaxed atomic counter, so
//     the sampled stream is evenly spaced rather than bursty;
//  2. a per-second rate cap (`max_sampled_per_sec`) — a window counter
//     reset on one-second boundaries, so a traffic spike cannot multiply
//     the absolute tracing overhead even at a fixed ratio.
//
// Unsampled requests pay one fetch_add and a branch.  All state is
// lock-free; Sample() is safe from any thread.

#ifndef KGQAN_OBS_SAMPLER_H_
#define KGQAN_OBS_SAMPLER_H_

#include <atomic>
#include <cstdint>

namespace kgqan::obs {

struct TraceSamplerOptions {
  // Sample every Nth request.  0 disables sampling entirely; 1 samples
  // every request (subject to the rate cap).
  uint64_t sample_every = 64;
  // Hard cap on sampled requests per second; <= 0 means uncapped.
  double max_sampled_per_sec = 32.0;
};

class TraceSampler {
 public:
  explicit TraceSampler(TraceSamplerOptions options = {});

  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  // True when the current request should carry a full span tree.
  bool Sample();

  uint64_t considered() const {
    return considered_.load(std::memory_order_relaxed);
  }
  uint64_t sampled() const { return sampled_.load(std::memory_order_relaxed); }
  uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }

  const TraceSamplerOptions& options() const { return options_; }

 private:
  TraceSamplerOptions options_;
  std::atomic<uint64_t> considered_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> rate_limited_{0};
  // Rate window: second index since the process epoch + samples admitted
  // inside it.  The window is advanced by CAS; a lost race simply counts
  // the sample against the winner's window, which only errs conservative.
  std::atomic<int64_t> window_second_{-1};
  std::atomic<uint64_t> window_count_{0};
};

}  // namespace kgqan::obs

#endif  // KGQAN_OBS_SAMPLER_H_
