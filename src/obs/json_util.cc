#include "obs/json_util.h"

#include <cstddef>
#include <cstdio>

namespace kgqan::obs {

namespace {

// Length of the valid UTF-8 sequence starting at text[i], or 0 when the
// bytes there do not form one (overlong encodings, surrogates, values past
// U+10FFFF, and truncated tails all return 0).  Table follows RFC 3629.
size_t Utf8SequenceLength(std::string_view text, size_t i) {
  const unsigned char b0 = static_cast<unsigned char>(text[i]);
  if (b0 < 0x80) return 1;
  auto cont = [&](size_t k, unsigned char lo, unsigned char hi) {
    if (i + k >= text.size()) return false;
    const unsigned char b = static_cast<unsigned char>(text[i + k]);
    return b >= lo && b <= hi;
  };
  if (b0 >= 0xC2 && b0 <= 0xDF) {
    return cont(1, 0x80, 0xBF) ? 2 : 0;
  }
  if (b0 == 0xE0) {
    return cont(1, 0xA0, 0xBF) && cont(2, 0x80, 0xBF) ? 3 : 0;
  }
  if ((b0 >= 0xE1 && b0 <= 0xEC) || b0 == 0xEE || b0 == 0xEF) {
    return cont(1, 0x80, 0xBF) && cont(2, 0x80, 0xBF) ? 3 : 0;
  }
  if (b0 == 0xED) {  // Excludes UTF-16 surrogates U+D800..U+DFFF.
    return cont(1, 0x80, 0x9F) && cont(2, 0x80, 0xBF) ? 3 : 0;
  }
  if (b0 == 0xF0) {
    return cont(1, 0x90, 0xBF) && cont(2, 0x80, 0xBF) && cont(3, 0x80, 0xBF)
               ? 4
               : 0;
  }
  if (b0 >= 0xF1 && b0 <= 0xF3) {
    return cont(1, 0x80, 0xBF) && cont(2, 0x80, 0xBF) && cont(3, 0x80, 0xBF)
               ? 4
               : 0;
  }
  if (b0 == 0xF4) {  // Caps the range at U+10FFFF.
    return cont(1, 0x80, 0x8F) && cont(2, 0x80, 0xBF) && cont(3, 0x80, 0xBF)
               ? 4
               : 0;
  }
  return 0;
}

}  // namespace

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x80) {
      switch (c) {
        case '"':
          *out += "\\\"";
          break;
        case '\\':
          *out += "\\\\";
          break;
        case '\n':
          *out += "\\n";
          break;
        case '\t':
          *out += "\\t";
          break;
        case '\r':
          *out += "\\r";
          break;
        default:
          if (c < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", unsigned{c});
            *out += buffer;
          } else {
            out->push_back(static_cast<char>(c));
          }
      }
      ++i;
      continue;
    }
    const size_t len = Utf8SequenceLength(text, i);
    if (len == 0) {
      *out += "\xEF\xBF\xBD";  // U+FFFD, one per rejected byte.
      ++i;
    } else {
      out->append(text.data() + i, len);
      i += len;
    }
  }
  out->push_back('"');
}

std::string JsonString(std::string_view text) {
  std::string out;
  AppendJsonString(&out, text);
  return out;
}

}  // namespace kgqan::obs
