// Chrome-trace-format export of span trees, one JSON event per line
// (JSONL).  The emitted events are "X" (complete) duration events plus
// "M" process_name metadata per trace, which ui.perfetto.dev loads
// directly; for the legacy chrome://tracing viewer wrap the lines in
// "[" ... "]" (the format is identical otherwise).
//
// Each trace becomes one Chrome "process" (pid = trace index, named by
// its label, typically the question text); span thread indices become
// tids, so the linking/execution fan-out shows up as parallel tracks.

#ifndef KGQAN_OBS_CHROME_TRACE_H_
#define KGQAN_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/trace.h"

namespace kgqan::obs {

// Emits the "M" process_name metadata event for pid `pid`.
void WriteChromeProcessName(std::string_view process_name, uint32_t pid,
                            std::ostream& out);

// Serializes a span snapshot as "X" events under pid `pid`.
// `root_args_json`, when non-empty, is a pre-rendered JSON fragment
// (`"key":value,...` without braces) spliced into the args of every root
// span — how per-trace counters and flight-record metadata ride along.
void WriteChromeSpans(const std::vector<SpanRecord>& spans, uint32_t pid,
                      std::string_view root_args_json, std::ostream& out);

// Serializes one trace as pid `pid` named `process_name`.
void WriteChromeTrace(const Trace& trace, std::string_view process_name,
                      uint32_t pid, std::ostream& out);

// Serializes every collected trace (pid = collection order).
void WriteChromeTrace(const TraceCollector& collector, std::ostream& out);

// Convenience: the collector's JSONL as a string (tests, Explain dumps).
std::string ChromeTraceJsonl(const TraceCollector& collector);

}  // namespace kgqan::obs

#endif  // KGQAN_OBS_CHROME_TRACE_H_
