// Slow-question flight recorder: a small ring buffer retaining forensic
// records — span tree, canonical SPARQL, status, timings — for the
// slowest / failed / deadline-exceeded recent questions, so "why was that
// one question slow?" is answerable on a live server without re-running
// anything.
//
// Cost model: the admission gate (ShouldRecord) is two relaxed loads and a
// compare, taken on every request.  Only admitted requests (rare by
// construction) build a FlightRecord and take the ring mutex.  Records are
// shared_ptr<const>, so Snapshot() and the Chrome-trace dump never copy
// span trees and never block recorders for longer than a pointer swap.

#ifndef KGQAN_OBS_FLIGHT_RECORDER_H_
#define KGQAN_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace kgqan::obs {

struct FlightRecord {
  uint64_t trace_id = 0;       // 0 when the request was not sampled.
  std::string question;
  std::string status;          // "ok", "deadline_exceeded", "error", ...
  double queue_ms = 0.0;
  double total_ms = 0.0;
  std::string canonical_sparql;  // Canonical key of the top candidate.
  uint64_t linking_requests = 0;
  uint64_t linking_round_trips = 0;
  std::vector<SpanRecord> spans;  // Empty when the request was unsampled.
};

struct FlightRecorderOptions {
  size_t capacity = 32;
  // A request slower than this is admitted; <= 0 admits every offered
  // request (tests).  Failed / deadline-exceeded requests are always
  // admitted regardless of the threshold.
  double slow_threshold_ms = 250.0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Lock-free admission gate; call before building a FlightRecord.
  bool ShouldRecord(double total_ms, bool failed) const {
    if (failed) return true;
    if (options_.slow_threshold_ms <= 0) return true;
    return total_ms >= options_.slow_threshold_ms;
  }

  void Record(std::shared_ptr<const FlightRecord> record);

  // Most-recent-last copy of the retained records.
  std::vector<std::shared_ptr<const FlightRecord>> Snapshot() const;

  // Total records ever admitted (ring overwrites included).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  const FlightRecorderOptions& options() const { return options_; }

  // Chrome-trace JSONL of every retained record: one "process" per record
  // (pid = retention order, process_name = the question), its span tree as
  // "X" events, and the record's metadata (trace_id, status, canonical
  // SPARQL, timings) as args on the root span.  Records captured without
  // spans (unsampled failures) synthesize a single "question" event so
  // they still appear on the timeline.
  void DumpChromeJsonl(std::ostream& out) const;
  std::string ChromeJsonl() const;

 private:
  FlightRecorderOptions options_;
  std::atomic<uint64_t> recorded_{0};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const FlightRecord>> ring_;
  size_t next_ = 0;  // Ring write cursor.
};

}  // namespace kgqan::obs

#endif  // KGQAN_OBS_FLIGHT_RECORDER_H_
