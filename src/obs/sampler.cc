#include "obs/sampler.h"

#include "obs/trace.h"

namespace kgqan::obs {

TraceSampler::TraceSampler(TraceSamplerOptions options) : options_(options) {}

bool TraceSampler::Sample() {
  if (options_.sample_every == 0) return false;
  const uint64_t n = considered_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.sample_every != 0) return false;
  if (options_.max_sampled_per_sec > 0) {
    const int64_t second = NanosSinceProcessEpoch() / 1'000'000'000;
    int64_t seen = window_second_.load(std::memory_order_relaxed);
    if (seen != second &&
        window_second_.compare_exchange_strong(seen, second,
                                               std::memory_order_relaxed)) {
      // This thread advanced the window; restart its budget.
      window_count_.store(0, std::memory_order_relaxed);
    }
    const uint64_t in_window =
        window_count_.fetch_add(1, std::memory_order_relaxed);
    if (double(in_window) >= options_.max_sampled_per_sec) {
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace kgqan::obs
