#include "obs/trace.h"

namespace kgqan::obs {

namespace {

// One process-wide stopwatch is the epoch all span timestamps are relative
// to; function-local static so the first instrumented call starts it.
const util::Stopwatch& EpochWatch() {
  static const util::Stopwatch watch;
  return watch;
}

TraceContext& CurrentContextSlot() {
  thread_local TraceContext context;
  return context;
}

}  // namespace

int64_t NanosSinceProcessEpoch() { return EpochWatch().ElapsedNanos(); }

uint32_t CurrentThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t Trace::NextTraceId() {
  // splitmix64 of a process-wide counter: unique, cheap, and well-mixed so
  // id prefixes (hex) are collision-resistant short handles.
  static std::atomic<uint64_t> next{0};
  uint64_t z = next.fetch_add(1, std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

std::string_view TraceCounterName(TraceCounter counter) {
  switch (counter) {
    case TraceCounter::kEndpointRequests:
      return "endpoint.requests";
    case TraceCounter::kEndpointRoundTrips:
      return "endpoint.round_trips";
    case TraceCounter::kEndpointCancelled:
      return "endpoint.cancelled";
    case TraceCounter::kLinkingCacheHits:
      return "linking_cache.hits";
    case TraceCounter::kLinkingCacheMisses:
      return "linking_cache.misses";
    case TraceCounter::kEvalMorsels:
      return "eval.morsels";
    case TraceCounter::kEvalBatches:
      return "eval.batches";
    case TraceCounter::kCount:
      break;
  }
  return "unknown";
}

size_t Trace::BeginSpan(std::string_view name, size_t parent) {
  if (!spans_enabled()) return kNoSpan;
  SpanRecord record;
  record.name = std::string(name);
  record.start_ns = NanosSinceProcessEpoch();
  record.parent = parent;
  record.thread_index = CurrentThreadIndex();
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
  return spans_.size() - 1;
}

void Trace::EndSpan(size_t span, int64_t duration_ns) {
  if (span == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mutex_);
  spans_[span].duration_ns = duration_ns;
}

void Trace::AddAttribute(size_t span, std::string_view key,
                         std::string_view value) {
  if (span == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mutex_);
  spans_[span].attributes.emplace_back(std::string(key), std::string(value));
}

std::vector<SpanRecord> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t Trace::FindSpan(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].name == name) return i;
  }
  return kNoSpan;
}

TraceContext CurrentContext() { return CurrentContextSlot(); }

ScopedContext::ScopedContext(TraceContext context)
    : saved_(CurrentContextSlot()) {
  CurrentContextSlot() = context;
}

ScopedContext::~ScopedContext() { CurrentContextSlot() = saved_; }

ScopedSpan::ScopedSpan(Trace* trace, std::string_view name)
    : saved_(CurrentContextSlot()) {
  if (trace == nullptr) return;
  // Nest under the current span only when it belongs to the same trace;
  // an explicit different trace starts its own root.
  size_t parent = saved_.trace == trace ? saved_.span : kNoSpan;
  trace_ = trace;
  span_ = trace->BeginSpan(name, parent);
  CurrentContextSlot() = TraceContext{trace, span_};
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(span_, watch_.ElapsedNanos());
  CurrentContextSlot() = saved_;
}

void ScopedSpan::AddAttribute(std::string_view key, std::string_view value) {
  if (trace_ != nullptr) trace_->AddAttribute(span_, key, value);
}

Trace* TraceCollector::StartTrace(std::string label) {
  auto trace = std::make_unique<Trace>(Trace::Mode::kFull);
  Trace* raw = trace.get();
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(Entry{std::move(label), std::move(trace)});
  return raw;
}

}  // namespace kgqan::obs
