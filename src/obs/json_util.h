// Shared JSON string emission for every obs export surface (Chrome-trace
// JSONL, metrics JSON, the exposition endpoints).  One escaper instead of
// per-file copies, because question text — arbitrary user bytes — flows
// into span attributes and must never produce invalid JSON.
//
// Guarantees of AppendJsonString:
//  * Output is always a valid JSON string literal.
//  * Control characters (U+0000..U+001F) and the JSON metacharacters are
//    escaped (`\n`, `\t`, `\r`, `\"`, `\\`, else `\u00XX`).
//  * Input is validated as UTF-8; every invalid byte sequence is replaced
//    by U+FFFD (the replacement character), so downstream strict parsers
//    — Prometheus scrapers, Perfetto, python json — accept the output.

#ifndef KGQAN_OBS_JSON_UTIL_H_
#define KGQAN_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace kgqan::obs {

// Appends `text` to `*out` as a quoted JSON string literal (including the
// surrounding double quotes).
void AppendJsonString(std::string* out, std::string_view text);

// Convenience wrapper returning the quoted literal.
std::string JsonString(std::string_view text);

}  // namespace kgqan::obs

#endif  // KGQAN_OBS_JSON_UTIL_H_
