// Per-question tracing: a Trace owns a tree of Spans (steady-clock
// start/duration, name, key→value attributes) plus a small set of atomic
// per-trace counters that instrumented components (the SPARQL endpoint,
// the linking cache) attribute to the *active* trace instead of bumping
// only process-global statistics.  That attribution is what makes the
// engine's per-question endpoint traffic counts exact under concurrency:
// every thread working for a question binds the question's trace into
// thread-local context (the thread pool propagates the binding to its
// tasks automatically), so two questions sharing one endpoint never
// pollute each other's counts.
//
// Cost model:
//  * Null trace (no binding): every instrumentation site reduces to one
//    thread-local read and a branch.
//  * Counters-only trace (Trace::Mode::kCountersOnly): counter increments
//    are relaxed atomics; BeginSpan is a no-op (no lock, no allocation).
//    This is what KgqanEngine::AnswerFull uses when the caller did not
//    ask for a span tree, so linking counters stay exact for free.
//  * Full trace: span begin/end take the trace mutex and allocate the
//    span record; attributes allocate strings.  Intended for per-question
//    debugging and the Chrome-trace export, not for every request of a
//    saturated server.
//
// Span timing reuses util::Stopwatch — the one steady-clock wrapper in the
// codebase — rather than duplicating chrono arithmetic.

#ifndef KGQAN_OBS_TRACE_H_
#define KGQAN_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace kgqan::obs {

inline constexpr size_t kNoSpan = static_cast<size_t>(-1);

// Nanoseconds since a process-wide steady epoch (first call wins), so the
// spans of every trace in a process share one timeline in exports.
int64_t NanosSinceProcessEpoch();

// Small dense id for the calling thread (Chrome-trace "tid"), assigned on
// first use.
uint32_t CurrentThreadIndex();

// The per-trace counters instrumented components attribute to the active
// trace.  A fixed enum (not a name→value map) keeps AddCounter a relaxed
// atomic increment on the endpoint's hot path.
enum class TraceCounter : size_t {
  kEndpointRequests = 0,   // Logical SPARQL requests (batch probes count).
  kEndpointRoundTrips,     // Physical query exchanges.
  kEndpointCancelled,      // Queries dropped by a cancelled/expired token.
  kLinkingCacheHits,
  kLinkingCacheMisses,
  kEvalMorsels,  // Morsels spawned by sharded BGP join steps.
  kEvalBatches,  // Batch boundaries crossed by vectorized join kernels.
  kCount,
};

std::string_view TraceCounterName(TraceCounter counter);

struct SpanRecord {
  std::string name;
  int64_t start_ns = 0;      // Since the process epoch.
  int64_t duration_ns = -1;  // -1 while the span is still open.
  size_t parent = kNoSpan;   // Index into the trace's span vector.
  uint32_t thread_index = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

class Trace {
 public:
  enum class Mode {
    kFull,          // Record spans and counters.
    kCountersOnly,  // Counters attribute; BeginSpan is a no-op.
  };

  explicit Trace(Mode mode = Mode::kFull) : mode_(mode), id_(NextTraceId()) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  bool spans_enabled() const { return mode_ == Mode::kFull; }

  // Process-unique, non-zero 64-bit id (well-mixed so prefixes are usable
  // as short handles in logs and the flight recorder).
  uint64_t id() const { return id_; }

  // Opens a span; returns its index, or kNoSpan in counters-only mode.
  // Thread-safe: concurrent workers of one question open sibling spans.
  size_t BeginSpan(std::string_view name, size_t parent);
  void EndSpan(size_t span, int64_t duration_ns);
  void AddAttribute(size_t span, std::string_view key,
                    std::string_view value);

  void AddCounter(TraceCounter counter, uint64_t delta) {
    counters_[static_cast<size_t>(counter)].fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t counter(TraceCounter counter) const {
    return counters_[static_cast<size_t>(counter)].load(
        std::memory_order_relaxed);
  }

  // Snapshot of the span tree (copy; safe while workers still append).
  std::vector<SpanRecord> spans() const;

  // Index of the first span named `name`, or kNoSpan.
  size_t FindSpan(std::string_view name) const;

 private:
  static uint64_t NextTraceId();

  Mode mode_;
  uint64_t id_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::array<std::atomic<uint64_t>, static_cast<size_t>(TraceCounter::kCount)>
      counters_{};
};

// The thread's active (trace, enclosing span) pair.  ScopedSpan pushes
// onto it; the thread pool captures it at Submit() and rebinds it inside
// the task, so nesting and counter attribution survive the fan-out.
struct TraceContext {
  Trace* trace = nullptr;
  size_t span = kNoSpan;
};

TraceContext CurrentContext();
inline Trace* CurrentTrace() { return CurrentContext().trace; }

// RAII rebinding of the thread-local context (used by pool workers).
class ScopedContext {
 public:
  explicit ScopedContext(TraceContext context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
};

// RAII span: opens a child of the current context's span on construction,
// becomes the current span, and closes with its Stopwatch duration on
// destruction.  With a null trace every method is a no-op; the embedded
// Stopwatch still runs so callers can read phase times from the same
// object that timed the span (one source of truth).
class ScopedSpan {
 public:
  // Child of the calling thread's current context.
  explicit ScopedSpan(std::string_view name)
      : ScopedSpan(CurrentContext().trace, name) {}

  // Explicit trace: a root span when the thread had no context for this
  // trace (this is how AnswerFull opens the question's root).
  ScopedSpan(Trace* trace, std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttribute(std::string_view key, std::string_view value);

  // True only when the span is actually recorded (full-mode trace).  Lets
  // call sites skip computing attribute values (std::to_string etc.) on
  // the disabled path.
  bool recording() const { return trace_ != nullptr && span_ != kNoSpan; }

  const util::Stopwatch& watch() const { return watch_; }
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }

 private:
  util::Stopwatch watch_;
  TraceContext saved_;
  Trace* trace_ = nullptr;
  size_t span_ = kNoSpan;
};

// Owns the traces of a run (one per question) with a display label each —
// the unit the Chrome-trace writer serializes.  StartTrace is thread-safe.
class TraceCollector {
 public:
  struct Entry {
    std::string label;
    std::unique_ptr<Trace> trace;
  };

  Trace* StartTrace(std::string label);

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace kgqan::obs

#endif  // KGQAN_OBS_TRACE_H_
