#include "obs/flight_recorder.h"

#include <cstdio>
#include <sstream>

#include "obs/chrome_trace.h"
#include "obs/json_util.h"

namespace kgqan::obs {

namespace {

std::string HexId(uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buffer);
}

std::string FormatMs(double ms) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return std::string(buffer);
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
}

void FlightRecorder::Record(std::shared_ptr<const FlightRecord> record) {
  if (record == nullptr) return;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % options_.capacity;
  }
}

std::vector<std::shared_ptr<const FlightRecord>> FlightRecorder::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const FlightRecord>> out;
  out.reserve(ring_.size());
  // Oldest-first: the ring wraps at next_, so [next_, end) precede
  // [0, next_) once full.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::DumpChromeJsonl(std::ostream& out) const {
  const std::vector<std::shared_ptr<const FlightRecord>> records = Snapshot();
  uint32_t pid = 0;
  for (const std::shared_ptr<const FlightRecord>& record : records) {
    WriteChromeProcessName(record->question, pid, out);
    std::string root_args = "\"trace_id\":";
    AppendJsonString(&root_args,
                     record->trace_id == 0 ? "" : HexId(record->trace_id));
    root_args += ",\"status\":";
    AppendJsonString(&root_args, record->status);
    root_args += ",\"question\":";
    AppendJsonString(&root_args, record->question);
    root_args += ",\"canonical_sparql\":";
    AppendJsonString(&root_args, record->canonical_sparql);
    root_args += ",\"queue_ms\":" + FormatMs(record->queue_ms) +
                 ",\"total_ms\":" + FormatMs(record->total_ms) +
                 ",\"linking_requests\":" +
                 std::to_string(record->linking_requests) +
                 ",\"linking_round_trips\":" +
                 std::to_string(record->linking_round_trips);
    if (!record->spans.empty()) {
      WriteChromeSpans(record->spans, pid, root_args, out);
    } else {
      // Unsampled admission (e.g. an unsampled failure): synthesize one
      // event so the record still lands on the timeline with its metadata.
      std::vector<SpanRecord> synthetic(1);
      synthetic[0].name = "question";
      synthetic[0].duration_ns =
          static_cast<int64_t>(record->total_ms * 1e6);
      WriteChromeSpans(synthetic, pid, root_args, out);
    }
    ++pid;
  }
}

std::string FlightRecorder::ChromeJsonl() const {
  std::ostringstream out;
  DumpChromeJsonl(out);
  return out.str();
}

}  // namespace kgqan::obs
