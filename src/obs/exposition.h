// Metrics exposition: renders a MetricsSnapshot for external consumers —
// the Prometheus text format (v0.0.4) for scrapers and a self-describing
// JSON document for dashboards, bench tooling, and the /stats endpoint.
//
// Metric names in the registry are dotted ("serve.queue_depth"); the
// Prometheus renderer maps them into the legal name charset
// [a-zA-Z_:][a-zA-Z0-9_:]* by prefixing "kgqan_" and replacing every
// other character with '_'.  Counters gain the conventional "_total"
// suffix; gauges emit the live value plus a "<name>_max" high-water
// sample; histograms emit cumulative "_bucket{le="..."}" series with the
// mandatory "+Inf" bucket, "_sum", and "_count".

#ifndef KGQAN_OBS_EXPOSITION_H_
#define KGQAN_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace kgqan::obs {

// Registry name → Prometheus metric name ("serve.queue_depth" →
// "kgqan_serve_queue_depth").  Exposed for tests and for consumers that
// need to predict scrape names.
std::string PrometheusName(std::string_view name);

// The snapshot in Prometheus text exposition format, with # HELP / # TYPE
// lines per metric family.
std::string PrometheusText(const MetricsSnapshot& snapshot);

// The snapshot as one JSON object:
//   {"counters": {name: value, ...},
//    "gauges": {name: {"value": v, "max": m}, ...},
//    "histograms": {name: {"count", "sum", "mean", "min", "max",
//                          "p50", "p90", "p95", "p99",
//                          "buckets": [{"le": bound, "count": cum}, ...]}}}
// Bucket counts are cumulative and end with the +Inf bucket, mirroring
// the Prometheus rendering so the two surfaces cannot drift apart.
std::string ExpositionJson(const MetricsSnapshot& snapshot);

}  // namespace kgqan::obs

#endif  // KGQAN_OBS_EXPOSITION_H_
