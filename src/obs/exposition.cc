#include "obs/exposition.h"

#include <cctype>
#include <cstdio>

#include "obs/json_util.h"

namespace kgqan::obs {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return std::string(buffer);
}

void AppendHelpType(std::string* out, const std::string& name,
                    std::string_view help, std::string_view type) {
  *out += "# HELP " + name + " ";
  // HELP text: escape backslash and newline per the text-format spec.
  for (char c : help) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\n');
  *out += "# TYPE " + name + " ";
  *out += type;
  out->push_back('\n');
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "kgqan_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name) + "_total";
    AppendHelpType(&out, prom, "Counter " + name + ".", "counter");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, gauge] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    AppendHelpType(&out, prom, "Gauge " + name + ".", "gauge");
    out += prom + " " + std::to_string(gauge.value) + "\n";
    const std::string prom_max = prom + "_max";
    AppendHelpType(&out, prom_max,
                   "High-water mark of gauge " + name + " since reset.",
                   "gauge");
    out += prom_max + " " + std::to_string(gauge.max) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    AppendHelpType(&out, prom, "Histogram " + name + " (milliseconds).",
                   "histogram");
    uint64_t cumulative = 0;
    for (size_t b = 0; b < hist.bounds.size(); ++b) {
      cumulative += b < hist.counts.size() ? hist.counts[b] : 0;
      out += prom + "_bucket{le=\"" + FormatDouble(hist.bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += prom + "_sum " + FormatDouble(hist.sum) + "\n";
    out += prom + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

std::string ExpositionJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"value\":" + std::to_string(gauge.value) +
           ",\"max\":" + std::to_string(gauge.max) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":" + std::to_string(hist.count) +
           ",\"sum\":" + FormatDouble(hist.sum) +
           ",\"mean\":" + FormatDouble(hist.Mean()) +
           ",\"min\":" + FormatDouble(hist.min) +
           ",\"max\":" + FormatDouble(hist.max) +
           ",\"p50\":" + FormatDouble(hist.Percentile(50)) +
           ",\"p90\":" + FormatDouble(hist.Percentile(90)) +
           ",\"p95\":" + FormatDouble(hist.Percentile(95)) +
           ",\"p99\":" + FormatDouble(hist.Percentile(99)) + ",\"buckets\":[";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < hist.bounds.size(); ++b) {
      cumulative += b < hist.counts.size() ? hist.counts[b] : 0;
      if (b != 0) out += ",";
      out += "{\"le\":" + FormatDouble(hist.bounds[b]) +
             ",\"count\":" + std::to_string(cumulative) + "}";
    }
    if (!hist.bounds.empty()) out += ",";
    out += "{\"le\":\"+Inf\",\"count\":" + std::to_string(hist.count) + "}]}";
  }
  out += "}}";
  return out;
}

}  // namespace kgqan::obs
