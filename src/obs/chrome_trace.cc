#include "obs/chrome_trace.h"

#include <cstdio>
#include <sstream>

#include "obs/json_util.h"

namespace kgqan::obs {

namespace {

std::string Micros(int64_t nanos) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", double(nanos) / 1000.0);
  return std::string(buffer);
}

}  // namespace

void WriteChromeProcessName(std::string_view process_name, uint32_t pid,
                            std::ostream& out) {
  std::string line = "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                     std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
  AppendJsonString(&line, process_name);
  line += "}}";
  out << line << "\n";
}

void WriteChromeSpans(const std::vector<SpanRecord>& spans, uint32_t pid,
                      std::string_view root_args_json, std::ostream& out) {
  std::string line;
  for (const SpanRecord& span : spans) {
    line = "{\"ph\":\"X\",\"name\":";
    AppendJsonString(&line, span.name);
    line += ",\"pid\":" + std::to_string(pid) +
            ",\"tid\":" + std::to_string(span.thread_index) +
            ",\"ts\":" + Micros(span.start_ns) + ",\"dur\":" +
            Micros(span.duration_ns < 0 ? int64_t{0} : span.duration_ns);
    line += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) line += ",";
      first = false;
      AppendJsonString(&line, key);
      line += ":";
      AppendJsonString(&line, value);
    }
    if (span.parent == kNoSpan && !root_args_json.empty()) {
      if (!first) line += ",";
      first = false;
      line += root_args_json;
    }
    line += "}}";
    out << line << "\n";
  }
}

void WriteChromeTrace(const Trace& trace, std::string_view process_name,
                      uint32_t pid, std::ostream& out) {
  WriteChromeProcessName(process_name, pid, out);
  // Root spans additionally carry the trace's exact per-trace counters, so
  // the per-question endpoint traffic is visible in the viewer.
  std::string root_args;
  for (size_t c = 0; c < static_cast<size_t>(TraceCounter::kCount); ++c) {
    if (!root_args.empty()) root_args += ",";
    AppendJsonString(&root_args, TraceCounterName(TraceCounter(c)));
    root_args += ":" + std::to_string(trace.counter(TraceCounter(c)));
  }
  WriteChromeSpans(trace.spans(), pid, root_args, out);
}

void WriteChromeTrace(const TraceCollector& collector, std::ostream& out) {
  uint32_t pid = 0;
  for (const TraceCollector::Entry& entry : collector.entries()) {
    WriteChromeTrace(*entry.trace, entry.label, pid++, out);
  }
}

std::string ChromeTraceJsonl(const TraceCollector& collector) {
  std::ostringstream out;
  WriteChromeTrace(collector, out);
  return out.str();
}

}  // namespace kgqan::obs
