#include "obs/chrome_trace.h"

#include <cstdio>
#include <sstream>

namespace kgqan::obs {

namespace {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Micros(int64_t nanos) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", double(nanos) / 1000.0);
  return std::string(buffer);
}

}  // namespace

void WriteChromeTrace(const Trace& trace, std::string_view process_name,
                      uint32_t pid, std::ostream& out) {
  std::string line = "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                     std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
  AppendJsonString(&line, process_name);
  line += "}}";
  out << line << "\n";

  const std::vector<SpanRecord> spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    line = "{\"ph\":\"X\",\"name\":";
    AppendJsonString(&line, span.name);
    line += ",\"pid\":" + std::to_string(pid) +
            ",\"tid\":" + std::to_string(span.thread_index) +
            ",\"ts\":" + Micros(span.start_ns) + ",\"dur\":" +
            Micros(span.duration_ns < 0 ? int64_t{0} : span.duration_ns);
    line += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) line += ",";
      first = false;
      AppendJsonString(&line, key);
      line += ":";
      AppendJsonString(&line, value);
    }
    // Root spans additionally carry the trace's exact per-trace counters,
    // so the per-question endpoint traffic is visible in the viewer.
    if (span.parent == kNoSpan) {
      for (size_t c = 0; c < static_cast<size_t>(TraceCounter::kCount); ++c) {
        if (!first) line += ",";
        first = false;
        AppendJsonString(&line, TraceCounterName(TraceCounter(c)));
        line += ":" + std::to_string(trace.counter(TraceCounter(c)));
      }
    }
    line += "}}";
    out << line << "\n";
  }
}

void WriteChromeTrace(const TraceCollector& collector, std::ostream& out) {
  uint32_t pid = 0;
  for (const TraceCollector::Entry& entry : collector.entries()) {
    WriteChromeTrace(*entry.trace, entry.label, pid++, out);
  }
}

std::string ChromeTraceJsonl(const TraceCollector& collector) {
  std::ostringstream out;
  WriteChromeTrace(collector, out);
  return out.str();
}

}  // namespace kgqan::obs
