#include "core/filtration.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace kgqan::core {

bool Filtration::LooksLikeDate(const rdf::Term& term) {
  if (!term.IsLiteral()) return false;
  if (term.datatype == rdf::vocab::kXsdDate) return true;
  // Lexical fallback: "YYYY" or "YYYY-MM-DD".
  const std::string& v = term.value;
  if (v.size() != 4 && v.size() != 10) return false;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i == 4 || i == 7) {
      if (v.size() == 10 && v[i] != '-') return false;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(v[i]))) return false;
  }
  return true;
}

bool Filtration::LooksLikeNumber(const rdf::Term& term) {
  if (!term.IsLiteral()) return false;
  if (term.datatype == rdf::vocab::kXsdInteger ||
      term.datatype == rdf::vocab::kXsdDouble) {
    return true;
  }
  const char* begin = term.value.c_str();
  char* end = nullptr;
  std::strtod(begin, &end);
  return end != begin && *end == '\0' && !term.value.empty();
}

bool Filtration::SemanticTypeMatches(const CandidateAnswer& answer,
                                     const std::string& semantic_type) const {
  if (answer.class_iris.empty()) return true;  // No class info: keep.
  if (semantic_type.empty() || semantic_type == "entity") return true;
  double best = 0.0;
  for (const std::string& class_iri : answer.class_iris) {
    std::string label = util::Join(
        util::SplitIdentifierWords(rdf::IriLocalName(class_iri)), " ");
    best = std::max(best, affinity_->Score(semantic_type, label));
  }
  return best >= config_->semantic_type_threshold;
}

std::vector<rdf::Term> Filtration::Filter(
    const std::vector<CandidateAnswer>& candidates,
    const nlp::AnswerTypePrediction& prediction) const {
  std::vector<rdf::Term> out;
  for (const CandidateAnswer& cand : candidates) {
    switch (prediction.data_type) {
      case nlp::AnswerDataType::kDate:
        if (LooksLikeDate(cand.term)) out.push_back(cand.term);
        break;
      case nlp::AnswerDataType::kNumerical:
        if (LooksLikeNumber(cand.term)) out.push_back(cand.term);
        break;
      case nlp::AnswerDataType::kBoolean:
        // Boolean questions are answered by ASK queries; any terms that
        // reach here pass through unchanged.
        out.push_back(cand.term);
        break;
      case nlp::AnswerDataType::kString:
        // Handled below (needs the whole candidate set).
        break;
    }
  }
  if (prediction.data_type != nlp::AnswerDataType::kString) return out;

  // String answers: drop raw numbers/dates, then apply the semantic-type
  // check *comparatively* — an answer is dropped for a class mismatch only
  // if some other candidate does match the predicted type.  This keeps the
  // filter from ever emptying the answer set, implementing the paper's
  // "designed to avoid hurting the recall much" (Sec. 7.3.3).
  std::vector<const CandidateAnswer*> string_like;
  for (const CandidateAnswer& cand : candidates) {
    if (LooksLikeNumber(cand.term) || LooksLikeDate(cand.term)) continue;
    string_like.push_back(&cand);
  }
  std::vector<bool> matches(string_like.size());
  bool any_match = false;
  for (size_t i = 0; i < string_like.size(); ++i) {
    matches[i] =
        SemanticTypeMatches(*string_like[i], prediction.semantic_type);
    if (matches[i] && !string_like[i]->class_iris.empty()) any_match = true;
  }
  for (size_t i = 0; i < string_like.size(); ++i) {
    if (any_match && !matches[i]) continue;
    out.push_back(string_like[i]->term);
  }
  return out;
}

}  // namespace kgqan::core
