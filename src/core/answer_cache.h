// Cross-question answer cache: a sharded LRU mapping
// (canonical candidate-query AST, endpoint generation) -> ResultSet.
//
// KGQAn's JIT design re-executes every candidate SPARQL query against the
// endpoint, yet a large user population asks many repeated and paraphrased
// questions whose candidates are identical after variable renaming and
// triple reordering.  This cache sits under KgqanEngine (and thereby under
// every QaServer worker sharing the engine) so such candidates skip SPARQL
// execution entirely.
//
// Keys are produced by sparql::Canonicalize — a canonical serialization
// that is invariant under variable renaming and commutative reordering but
// distinguishes every answer-changing modifier (DISTINCT, LIMIT, ORDER BY,
// FILTER, projection order) — combined with the endpoint's cache identity
// (name + atomic update generation, the same discipline as the linking
// cache): a live AddNTriples bumps the generation, so stale entries simply
// stop matching.  Values are stored under canonical column names; the
// engine translates a hit back to its own projection names positionally.
//
// Writers must uphold two disciplines the engine enforces:
//  * Results observed under an expired cancellation token, or whose
//    endpoint generation moved between issue and completion, are never
//    inserted (a poisoned partial entry would outlive its request).
//  * Values are immutable once inserted (shared_ptr<const ResultSet>), so
//    concurrent readers never copy under the shard lock.
//
// Hit/miss/eviction/insertion counters are mirrored into the process-wide
// metrics registry as serve.answer_cache.* for the serving dashboards and
// the bench_caching smoke gate.

#ifndef KGQAN_CORE_ANSWER_CACHE_H_
#define KGQAN_CORE_ANSWER_CACHE_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sparql/result_set.h"

namespace kgqan::core {

struct AnswerCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t insertions = 0;
  size_t entries = 0;

  double HitRate() const {
    size_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

class AnswerCache {
 public:
  // `capacity` is the total entry budget, split evenly across `shards`
  // (each shard keeps at least one entry).
  explicit AnswerCache(size_t capacity, size_t shards = 8);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  // Returns the cached result for (canonical key, KG identity), or null.
  // The result is shared and immutable; a hit refreshes LRU recency.
  std::shared_ptr<const sparql::ResultSet> Get(std::string_view canonical_key,
                                               std::string_view kg) const;

  // Inserts (or refreshes) an entry.  `result` must be the complete result
  // of a successfully executed query whose endpoint generation still
  // matches `kg` — the engine checks both before calling.
  void Put(std::string_view canonical_key, std::string_view kg,
           std::shared_ptr<const sparql::ResultSet> result);

  AnswerCacheStats stats() const;
  void Clear();

  size_t shard_count() const { return num_shards_; }

 private:
  using Entry =
      std::pair<std::string, std::shared_ptr<const sparql::ResultSet>>;

  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> order;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  static std::string MakeKey(std::string_view canonical_key,
                             std::string_view kg);
  Shard& ShardFor(const std::string& key) const;

  void RecordLookup(bool hit) const;

  size_t num_shards_;
  size_t per_shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  mutable std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> misses_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> insertions_{0};
  // Registry mirrors (shared by every cache in the process).
  obs::Counter* metric_hits_;
  obs::Counter* metric_misses_;
  obs::Counter* metric_evictions_;
  obs::Counter* metric_insertions_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_ANSWER_CACHE_H_
