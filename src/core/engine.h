// KgqanEngine: the end-to-end universal question-answering pipeline
// (Figure 4) — question understanding, JIT linking, execution and
// filtration — against an arbitrary SPARQL endpoint, with no per-KG
// pre-processing.

#ifndef KGQAN_CORE_ENGINE_H_
#define KGQAN_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/agp.h"
#include "core/bgp.h"
#include "core/config.h"
#include "core/filtration.h"
#include "core/linker.h"
#include "core/qa_interface.h"
#include "embedding/affinity.h"
#include "nlp/answer_type.h"
#include "qu/pgp.h"
#include "qu/triple_pattern_generator.h"
#include "sparql/endpoint.h"

namespace kgqan::core {

// Full per-question result, including the intermediate artifacts the
// analysis experiments inspect.
struct KgqanResult {
  QaResponse response;
  qu::Pgp pgp;
  nlp::AnswerTypePrediction answer_type;
  Agp agp;                    // Annotated graph (after linking).
  size_t queries_generated = 0;
  size_t queries_executed = 0;
};

// Renders a human-readable trace of the pipeline for `result`: the PGP,
// the predicted answer type, the top link annotations per node/edge, and
// the answers.  Used by the CLI's verbose mode and handy when debugging a
// misanswered question.
std::string Explain(const KgqanResult& result);

class KgqanEngine : public QaSystem {
 public:
  KgqanEngine() : KgqanEngine(KgqanConfig()) {}
  explicit KgqanEngine(const KgqanConfig& config);

  std::string name() const override { return "KGQAn"; }

  // KGQAn is on-demand: no pre-processing at all (its zero cost *is* the
  // Table 2 result).
  PreprocessStats Preprocess(sparql::Endpoint& endpoint) override {
    (void)endpoint;
    return PreprocessStats{};
  }

  QaResponse Answer(const std::string& question,
                    sparql::Endpoint& endpoint) override {
    return AnswerFull(question, endpoint).response;
  }

  // Full pipeline with intermediate artifacts exposed.
  KgqanResult AnswerFull(const std::string& question,
                         sparql::Endpoint& endpoint) const;

  const KgqanConfig& config() const { return config_; }
  const embed::SemanticAffinity& affinity() const { return *affinity_; }
  const qu::TriplePatternGenerator& generator() const { return generator_; }

 private:
  KgqanConfig config_;
  qu::TriplePatternGenerator generator_;
  nlp::AnswerTypeClassifier answer_type_classifier_;
  std::unique_ptr<embed::SemanticAffinity> affinity_;
  JitLinker linker_;
  BgpGenerator bgp_generator_;
  Filtration filtration_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_ENGINE_H_
