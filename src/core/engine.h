// KgqanEngine: the end-to-end universal question-answering pipeline
// (Figure 4) — question understanding, JIT linking, execution and
// filtration — against an arbitrary SPARQL endpoint, with no per-KG
// pre-processing.

#ifndef KGQAN_CORE_ENGINE_H_
#define KGQAN_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/agp.h"
#include "core/answer_cache.h"
#include "core/bgp.h"
#include "core/config.h"
#include "core/filtration.h"
#include "core/linker.h"
#include "core/linking_cache.h"
#include "core/qa_interface.h"
#include "embedding/affinity.h"
#include "nlp/answer_type.h"
#include "qu/pgp.h"
#include "qu/triple_pattern_generator.h"
#include "sparql/endpoint.h"
#include "sparql/evaluator.h"
#include "util/thread_pool.h"

namespace kgqan::core {

// Per-candidate-query execution record (rank order of the BGP list).
// Slots exist for every generated query; `executed` distinguishes the ones
// the rank-order scan actually ran from the ones it skipped.
struct CandidateQueryStats {
  size_t rank = 0;
  double score = 0.0;
  bool executed = false;
  double latency_ms = 0.0;
  size_t rows = 0;  // Surviving answers (SELECT) or 1/0 (ASK held or not).
  // EXPLAIN ANALYZE: per-operator runtime stats of the candidate's
  // evaluation, in execution order.  Populated when Config::explain_analyze
  // is on or the question's trace records spans; empty otherwise (and on
  // answer-cache hits, which evaluate nothing).
  std::vector<sparql::OperatorStats> operators;
};

// Full per-question result, including the intermediate artifacts the
// analysis experiments inspect.
struct KgqanResult {
  QaResponse response;
  qu::Pgp pgp;
  nlp::AnswerTypePrediction answer_type;
  Agp agp;                    // Annotated graph (after linking).
  size_t queries_generated = 0;
  size_t queries_executed = 0;
  std::vector<CandidateQueryStats> candidates;
  // Endpoint traffic of the linking phase: logical SPARQL requests and
  // physical exchanges (batched linking shrinks the latter).  Exact even
  // when other threads share the endpoint concurrently: the endpoint
  // attributes traffic to the question's trace, which every worker thread
  // of this question binds via thread-local context.
  size_t linking_requests = 0;
  size_t linking_round_trips = 0;
  // True when cooperative cancellation truncated the pipeline (the bound
  // util::CancelToken expired mid-question): the response holds whatever
  // was complete at that point — possibly no answers at all — and the
  // linking cache holds no entries produced after the expiry.
  bool deadline_exceeded = false;
  // Id of the question's span-recording trace (0 when the request ran
  // counters-only) — the handle that correlates a response with the
  // serving front-end's flight recorder and trace dumps.
  uint64_t trace_id = 0;
  // SPARQL text of the top-ranked candidate query, set as soon as BGP
  // generation produced one — even when the deadline then expires before
  // execution — so slow-question forensics always have the query.
  std::string top_sparql;
};

// Renders a human-readable trace of the pipeline for `result`: the PGP,
// the predicted answer type, the top link annotations per node/edge, and
// the answers.  Used by the CLI's verbose mode and handy when debugging a
// misanswered question.
std::string Explain(const KgqanResult& result);

class KgqanEngine : public QaSystem {
 public:
  KgqanEngine() : KgqanEngine(KgqanConfig()) {}
  explicit KgqanEngine(const KgqanConfig& config)
      : KgqanEngine(config, nullptr) {}

  // Shares `answer_cache` instead of building a private one — pass the
  // same cache to every engine behind one QaServer so paraphrased
  // questions hit regardless of which worker/engine served the original
  // (null + config.answer_cache => a private cache is built).
  KgqanEngine(const KgqanConfig& config,
              std::shared_ptr<AnswerCache> answer_cache);

  std::string name() const override { return "KGQAn"; }

  // KGQAn is on-demand: no pre-processing at all (its zero cost *is* the
  // Table 2 result).
  PreprocessStats Preprocess(sparql::Endpoint& endpoint) override {
    (void)endpoint;
    return PreprocessStats{};
  }

  QaResponse Answer(const std::string& question,
                    sparql::Endpoint& endpoint) override {
    return AnswerFull(question, endpoint).response;
  }
  QaResponse Answer(const std::string& question, sparql::Endpoint& endpoint,
                    obs::Trace* trace) override {
    return AnswerFull(question, endpoint, trace).response;
  }

  // Full pipeline with intermediate artifacts exposed.  When `trace` is a
  // full-mode obs::Trace, one span tree for the question is recorded into
  // it (qu → linking → execution → filtration, down to individual probe
  // batches and candidate queries).  With nullptr the engine still binds a
  // private counters-only trace, so linking_requests/linking_round_trips
  // are exact either way and span bookkeeping costs nothing.
  //
  // Deadlines: when Config::cooperative_cancellation is on and the calling
  // thread has a util::CancelToken bound (see serve::QaServer), the
  // pipeline polls it between phases, before every candidate query, and at
  // every endpoint exchange; on expiry it stops issuing work and returns
  // the partial result with deadline_exceeded set.
  KgqanResult AnswerFull(const std::string& question,
                         sparql::Endpoint& endpoint,
                         obs::Trace* trace = nullptr) const;

  // Linking-cache hit/miss counters (zeros when caching is disabled).
  RuntimeCounters Counters() const override;

  const KgqanConfig& config() const { return config_; }
  const embed::SemanticAffinity& affinity() const { return *affinity_; }
  const qu::TriplePatternGenerator& generator() const { return generator_; }

  // Applies the engine's endpoint-side configuration
  // (Config::intra_query_threads, Config::vectorized_eval /
  // eval_batch_size) to `endpoint`.  Configuration call — run it before
  // serving queries, not concurrently with them.
  void ConfigureEndpoint(sparql::Endpoint& endpoint) const {
    endpoint.set_intra_query_threads(config_.intra_query_threads);
    endpoint.set_vectorized_eval(config_.vectorized_eval,
                                 config_.eval_batch_size);
  }

  // Worker threads actually in use (1 = serial pipeline).
  size_t effective_threads() const { return pool_ ? pool_->size() : 1; }
  const LinkingCache* linking_cache() const { return cache_.get(); }
  // The cross-question answer cache (null when disabled); shared so
  // multi-engine deployments can pool it.
  const std::shared_ptr<AnswerCache>& answer_cache() const {
    return answer_cache_;
  }

 private:
  // Executes the ranked candidate queries of a non-boolean question and
  // unions answers in rank order (Sec. 6 semantics; identical answers for
  // serial and parallel execution).
  void ExecuteSelectCandidates(const std::vector<Bgp>& bgps,
                               const std::string& var,
                               sparql::Endpoint& endpoint,
                               KgqanResult* result) const;
  void ExecuteAskCandidates(const std::vector<Bgp>& bgps,
                            sparql::Endpoint& endpoint,
                            KgqanResult* result) const;

  // Runs one SELECT candidate and groups its rows into (answer, classes)
  // candidates; post-filtration is applied so the caller only unions.
  // Fills `stats` (the candidate's preallocated slot — distinct per task,
  // so parallel waves write without synchronization) and records an
  // "execution.candidate" span.
  std::vector<rdf::Term> RunSelectCandidate(
      const Bgp& bgp, size_t rank, const std::string& var,
      const nlp::AnswerTypePrediction& answer_type, sparql::Endpoint& endpoint,
      CandidateQueryStats* stats) const;

  // Executes one candidate query, consulting the answer cache when
  // enabled: a hit (keyed on the canonical AST and the endpoint's current
  // generation) skips the endpoint entirely and is translated back to the
  // candidate's own variable names; a miss executes and inserts — unless
  // the request's deadline expired or the endpoint generation moved during
  // execution, which must never populate the cache.  `cache_hit` (nullable)
  // reports which path was taken.
  util::StatusOr<sparql::ResultSet> ExecuteCandidateQuery(
      const std::string& sparql_text, sparql::Endpoint& endpoint,
      bool* cache_hit) const;

  KgqanConfig config_;
  qu::TriplePatternGenerator generator_;
  nlp::AnswerTypeClassifier answer_type_classifier_;
  std::unique_ptr<embed::SemanticAffinity> affinity_;
  // Declared before linker_: the linker borrows both raw pointers.
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<LinkingCache> cache_;
  std::shared_ptr<AnswerCache> answer_cache_;
  JitLinker linker_;
  BgpGenerator bgp_generator_;
  Filtration filtration_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_ENGINE_H_
