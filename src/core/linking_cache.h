// Sharded LRU cache for JIT linking results, keyed by
// (phrase, KG identity, mode).
//
// The linker's endpoint round-trips — the potentialRelevantVertices text
// query per entity phrase and the description lookup per cryptic predicate
// — are pure functions of the phrase and the KG contents, so repeated
// questions ("Who is the president of Egypt?", "Who is the president of
// France?") can skip them entirely.  The KG identity component of the key
// is the endpoint's name plus its update generation, so live AddNTriples
// updates invalidate naturally instead of serving stale links.
//
// The cache is sharded (key-hash → shard, each with its own mutex and LRU
// list) so the parallel linking fan-out does not serialize on one lock.
// Hit/miss counters are global atomics surfaced through the eval harness;
// every lookup is additionally mirrored into the process-wide metrics
// registry (linking_cache.hits/misses/evictions) and attributed to the
// calling thread's active obs::Trace for per-question accounting.

#ifndef KGQAN_CORE_LINKING_CACHE_H_
#define KGQAN_CORE_LINKING_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/agp.h"
#include "obs/metrics.h"

namespace kgqan::core {

struct LinkingCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t entries = 0;

  double HitRate() const {
    size_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

class LinkingCache {
 public:
  // `capacity` is the total entry budget per mode, split evenly across the
  // shards (minimum 1 per shard).
  explicit LinkingCache(size_t capacity);

  LinkingCache(const LinkingCache&) = delete;
  LinkingCache& operator=(const LinkingCache&) = delete;

  // Entity mode: relevant vertices of a node label.
  std::optional<std::vector<RelevantVertex>> GetVertices(
      std::string_view phrase, std::string_view kg) const;
  void PutVertices(std::string_view phrase, std::string_view kg,
                   const std::vector<RelevantVertex>& vertices);

  // Relation mode: human-readable description of a (cryptic) predicate.
  std::optional<std::string> GetPredicateDescription(std::string_view iri,
                                                     std::string_view kg) const;
  void PutPredicateDescription(std::string_view iri, std::string_view kg,
                               const std::string& description);

  // Anchor mode (batched linking): the distinct predicate IRIs seen on the
  // outgoing (`vertex_is_object` false) or incoming (true) edges of an
  // anchor vertex.  Per-probe granularity: cache hits shrink the next
  // batched wave instead of skipping it wholesale.
  std::optional<std::vector<std::string>> GetAnchorPredicates(
      std::string_view iri, bool vertex_is_object, std::string_view kg) const;
  void PutAnchorPredicates(std::string_view iri, bool vertex_is_object,
                           std::string_view kg,
                           const std::vector<std::string>& predicates);

  LinkingCacheStats stats() const;
  void Clear();

 private:
  template <typename Value>
  class ShardedLru {
   public:
    static constexpr size_t kNumShards = 8;

    explicit ShardedLru(size_t capacity)
        : per_shard_capacity_(
              capacity / kNumShards > 0 ? capacity / kNumShards : 1) {}

    std::optional<Value> Get(const std::string& key) {
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.index.find(key);
      if (it == shard.index.end()) return std::nullopt;
      // Move to front (most recently used).
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->second;
    }

    void Put(const std::string& key, const Value& value, size_t* evictions) {
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        it->second->second = value;
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        return;
      }
      shard.order.emplace_front(key, value);
      shard.index.emplace(key, shard.order.begin());
      if (shard.order.size() > per_shard_capacity_) {
        shard.index.erase(shard.order.back().first);
        shard.order.pop_back();
        ++*evictions;
      }
    }

    size_t TotalEntries() const {
      size_t n = 0;
      for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        n += shard.order.size();
      }
      return n;
    }

    void Clear() {
      for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.order.clear();
        shard.index.clear();
      }
    }

   private:
    struct Shard {
      mutable std::mutex mutex;
      // Front = most recently used.
      std::list<std::pair<std::string, Value>> order;
      std::unordered_map<std::string,
                         typename std::list<std::pair<std::string, Value>>::
                             iterator>
          index;
    };

    Shard& ShardFor(const std::string& key) {
      return shards_[std::hash<std::string>{}(key) % kNumShards];
    }

    size_t per_shard_capacity_;
    mutable std::array<Shard, kNumShards> shards_;
  };

  static std::string MakeKey(std::string_view phrase, std::string_view kg);

  // Bumps the internal counters, the registry mirrors, and the calling
  // thread's trace attribution for one lookup / `n` evictions.
  void RecordLookup(bool hit) const;
  void RecordEvictions(size_t n) const;

  // Mutable: Get() reorders the LRU lists and bumps counters; the cache is
  // logically read-only to const callers (the linker's const query path).
  mutable ShardedLru<std::vector<RelevantVertex>> vertices_;
  mutable ShardedLru<std::string> descriptions_;
  mutable ShardedLru<std::vector<std::string>> anchor_predicates_;
  mutable std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> misses_{0};
  mutable std::atomic<size_t> evictions_{0};
  // Registry mirrors (shared by every cache in the process).
  obs::Counter* metric_hits_;
  obs::Counter* metric_misses_;
  obs::Counter* metric_evictions_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_LINKING_CACHE_H_
