#include "core/answer_cache.h"

#include <functional>

namespace kgqan::core {

AnswerCache::AnswerCache(size_t capacity, size_t shards)
    : num_shards_(shards > 0 ? shards : 1),
      per_shard_capacity_(capacity / num_shards_ > 0 ? capacity / num_shards_
                                                     : 1),
      shards_(std::make_unique<Shard[]>(num_shards_)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  metric_hits_ = &registry.GetCounter("serve.answer_cache.hits");
  metric_misses_ = &registry.GetCounter("serve.answer_cache.misses");
  metric_evictions_ = &registry.GetCounter("serve.answer_cache.evictions");
  metric_insertions_ = &registry.GetCounter("serve.answer_cache.insertions");
}

std::string AnswerCache::MakeKey(std::string_view canonical_key,
                                 std::string_view kg) {
  std::string key;
  key.reserve(canonical_key.size() + kg.size() + 1);
  key.append(kg);
  key.push_back('\x1f');
  key.append(canonical_key);
  return key;
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % num_shards_];
}

void AnswerCache::RecordLookup(bool hit) const {
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metric_hits_->Add(1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metric_misses_->Add(1);
  }
}

std::shared_ptr<const sparql::ResultSet> AnswerCache::Get(
    std::string_view canonical_key, std::string_view kg) const {
  std::string key = MakeKey(canonical_key, kg);
  Shard& shard = ShardFor(key);
  std::shared_ptr<const sparql::ResultSet> result;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      result = it->second->second;
    }
  }
  RecordLookup(result != nullptr);
  return result;
}

void AnswerCache::Put(std::string_view canonical_key, std::string_view kg,
                      std::shared_ptr<const sparql::ResultSet> result) {
  if (result == nullptr) return;
  std::string key = MakeKey(canonical_key, kg);
  Shard& shard = ShardFor(key);
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(result);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
    } else {
      shard.order.emplace_front(key, std::move(result));
      shard.index.emplace(std::move(key), shard.order.begin());
      if (shard.order.size() > per_shard_capacity_) {
        shard.index.erase(shard.order.back().first);
        shard.order.pop_back();
        evicted = 1;
      }
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  metric_insertions_->Add(1);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    metric_evictions_->Add(evicted);
  }
}

AnswerCacheStats AnswerCache::stats() const {
  AnswerCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    stats.entries += shards_[s].order.size();
  }
  return stats;
}

void AnswerCache::Clear() {
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].order.clear();
    shards_[s].index.clear();
  }
}

}  // namespace kgqan::core
