// Just-in-time entity and relation linking (Sec. 5, Algorithms 1 and 2).
//
// The linker talks to the target KG exclusively through its public SPARQL
// API: a text-containment query per entity node (answered by the RDF
// engine's built-in full-text index) and outgoing/incoming predicate
// lookups per relevant vertex.  No pre-processing, no prior knowledge of
// the KG.
//
// When constructed with a thread pool, the per-node and per-edge fan-out
// of Link() runs on the pool (nodes first, then the edges that depend on
// them); results are identical to the serial order because each node/edge
// is an independent pure function of the PGP and the endpoint.  When
// constructed with a LinkingCache, entity-linking results and cryptic-
// predicate descriptions are memoized across questions, keyed by (phrase,
// endpoint identity, mode).

#ifndef KGQAN_CORE_LINKER_H_
#define KGQAN_CORE_LINKER_H_

#include <string>

#include "core/agp.h"
#include "core/config.h"
#include "core/linking_cache.h"
#include "embedding/affinity.h"
#include "qu/pgp.h"
#include "sparql/endpoint.h"
#include "util/thread_pool.h"

namespace kgqan::core {

class JitLinker {
 public:
  JitLinker(const KgqanConfig* config, const embed::SemanticAffinity* affinity,
            util::ThreadPool* pool = nullptr, LinkingCache* cache = nullptr)
      : config_(config), affinity_(affinity), pool_(pool), cache_(cache) {}

  // Annotates every node and edge of `pgp` against `endpoint` (Def. 5.3).
  Agp Link(const qu::Pgp& pgp, sparql::Endpoint& endpoint) const;

  // Algorithm 1 for a single node: relevant vertices of `label`.
  std::vector<RelevantVertex> LinkEntity(const std::string& label,
                                         sparql::Endpoint& endpoint) const;

  // Builds the potentialRelevantVertices SPARQL request for a node label
  // (exposed for tests).
  static std::string PotentialRelevantVerticesQuery(const std::string& label,
                                                    size_t max_vr);

  // Algorithm 2 for a single edge.  Public so that baselines with their
  // own entity-linking indexes (EDGQA's BERT-ranked relation linking is
  // behaviourally the same semantic ranking) can reuse it on an Agp whose
  // node_vertices they filled themselves.
  std::vector<RelevantPredicate> LinkRelation(const Agp& agp,
                                              const qu::Pgp::Edge& edge,
                                              size_t edge_index,
                                              sparql::Endpoint& endpoint) const;

  // Retrieves a human-readable description for predicate `iri`: the IRI's
  // local name if readable, otherwise a string literal attached to the
  // predicate vertex itself (the wdg:P227 case of Sec. 5.2).
  // Path support: materializes candidate vertices for an intermediate
  // unknown node from the already-linked edges incident to it, so that
  // unknown-unknown edges can be relation-linked.
  void DeriveUnknownVertices(Agp* agp, size_t node,
                             sparql::Endpoint& endpoint) const;

 private:
  // Uncached Algorithm 1 (the actual endpoint round-trip + ranking).
  std::vector<RelevantVertex> LinkEntityUncached(
      const std::string& label, sparql::Endpoint& endpoint) const;

  std::string PredicateDescription(const std::string& iri,
                                   sparql::Endpoint& endpoint) const;

  const KgqanConfig* config_;
  const embed::SemanticAffinity* affinity_;
  util::ThreadPool* pool_;   // Not owned; nullptr = serial.
  LinkingCache* cache_;      // Not owned; nullptr = no memoization.
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_LINKER_H_
