// Just-in-time entity and relation linking (Sec. 5, Algorithms 1 and 2).
//
// The linker talks to the target KG exclusively through its public SPARQL
// API: a text-containment query per entity node (answered by the RDF
// engine's built-in full-text index) and outgoing/incoming predicate
// lookups per relevant vertex.  No pre-processing, no prior knowledge of
// the KG.

#ifndef KGQAN_CORE_LINKER_H_
#define KGQAN_CORE_LINKER_H_

#include <string>

#include "core/agp.h"
#include "core/config.h"
#include "embedding/affinity.h"
#include "qu/pgp.h"
#include "sparql/endpoint.h"

namespace kgqan::core {

class JitLinker {
 public:
  JitLinker(const KgqanConfig* config, const embed::SemanticAffinity* affinity)
      : config_(config), affinity_(affinity) {}

  // Annotates every node and edge of `pgp` against `endpoint` (Def. 5.3).
  Agp Link(const qu::Pgp& pgp, sparql::Endpoint& endpoint) const;

  // Algorithm 1 for a single node: relevant vertices of `label`.
  std::vector<RelevantVertex> LinkEntity(const std::string& label,
                                         sparql::Endpoint& endpoint) const;

  // Builds the potentialRelevantVertices SPARQL request for a node label
  // (exposed for tests).
  static std::string PotentialRelevantVerticesQuery(const std::string& label,
                                                    size_t max_vr);

  // Algorithm 2 for a single edge.  Public so that baselines with their
  // own entity-linking indexes (EDGQA's BERT-ranked relation linking is
  // behaviourally the same semantic ranking) can reuse it on an Agp whose
  // node_vertices they filled themselves.
  std::vector<RelevantPredicate> LinkRelation(const Agp& agp,
                                              const qu::Pgp::Edge& edge,
                                              size_t edge_index,
                                              sparql::Endpoint& endpoint) const;

  // Retrieves a human-readable description for predicate `iri`: the IRI's
  // local name if readable, otherwise a string literal attached to the
  // predicate vertex itself (the wdg:P227 case of Sec. 5.2).
  // Path support: materializes candidate vertices for an intermediate
  // unknown node from the already-linked edges incident to it, so that
  // unknown-unknown edges can be relation-linked.
  void DeriveUnknownVertices(Agp* agp, size_t node,
                             sparql::Endpoint& endpoint) const;

 private:
  std::string PredicateDescription(const std::string& iri,
                                   sparql::Endpoint& endpoint) const;

  const KgqanConfig* config_;
  const embed::SemanticAffinity* affinity_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_LINKER_H_
