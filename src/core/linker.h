// Just-in-time entity and relation linking (Sec. 5, Algorithms 1 and 2).
//
// The linker talks to the target KG exclusively through its public SPARQL
// API: a text-containment query per entity node (answered by the RDF
// engine's built-in full-text index) and outgoing/incoming predicate
// lookups per relevant vertex.  No pre-processing, no prior knowledge of
// the KG.
//
// When constructed with a thread pool, the per-node and per-edge fan-out
// of Link() runs on the pool (nodes first, then the edges that depend on
// them); results are identical to the serial order because each node/edge
// is an independent pure function of the PGP and the endpoint.  When
// constructed with a LinkingCache, entity-linking results and cryptic-
// predicate descriptions are memoized across questions, keyed by (phrase,
// endpoint identity, mode).
//
// Cancellation: with Config::cooperative_cancellation set, probes issued
// after the calling thread's util::CancelToken expires fail fast at the
// endpoint, and *no* result computed on-or-after the expiry is written to
// the linking cache — a cancelled wave must not poison the cache with
// partial (typically empty) link sets for later questions.

#ifndef KGQAN_CORE_LINKER_H_
#define KGQAN_CORE_LINKER_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/agp.h"
#include "core/config.h"
#include "core/linking_cache.h"
#include "embedding/affinity.h"
#include "qu/pgp.h"
#include "sparql/endpoint.h"
#include "util/thread_pool.h"

namespace kgqan::core {

class JitLinker {
 public:
  JitLinker(const KgqanConfig* config, const embed::SemanticAffinity* affinity,
            util::ThreadPool* pool = nullptr, LinkingCache* cache = nullptr)
      : config_(config), affinity_(affinity), pool_(pool), cache_(cache) {}

  // Annotates every node and edge of `pgp` against `endpoint` (Def. 5.3).
  // With Config::batch_linking set, dispatches to LinkBatched().
  Agp Link(const qu::Pgp& pgp, sparql::Endpoint& endpoint) const;

  // Batched Algorithms 1 and 2: the text-containment probes of the node
  // wave and the outgoing/incoming predicate probes of the edge wave are
  // folded into combined UNION/VALUES queries of at most
  // Config::max_batch_size probes each (a discriminator variable
  // demultiplexes the rows back per probe), so each wave costs
  // ceil(probes / max_batch_size) endpoint round-trips.  The produced Agp
  // is byte-identical to the serial path: per-probe row order inside a
  // batch equals the row order of the probe's own query.
  Agp LinkBatched(const qu::Pgp& pgp, sparql::Endpoint& endpoint) const;

  // Algorithm 1 for a single node: relevant vertices of `label`.
  std::vector<RelevantVertex> LinkEntity(const std::string& label,
                                         sparql::Endpoint& endpoint) const;

  // Builds the potentialRelevantVertices SPARQL request for a node label
  // (exposed for tests).
  static std::string PotentialRelevantVerticesQuery(const std::string& label,
                                                    size_t max_vr);

  // Algorithm 2 for a single edge.  Public so that baselines with their
  // own entity-linking indexes (EDGQA's BERT-ranked relation linking is
  // behaviourally the same semantic ranking) can reuse it on an Agp whose
  // node_vertices they filled themselves.
  std::vector<RelevantPredicate> LinkRelation(const Agp& agp,
                                              const qu::Pgp::Edge& edge,
                                              size_t edge_index,
                                              sparql::Endpoint& endpoint) const;

  // Retrieves a human-readable description for predicate `iri`: the IRI's
  // local name if readable, otherwise a string literal attached to the
  // predicate vertex itself (the wdg:P227 case of Sec. 5.2).
  // Path support: materializes candidate vertices for an intermediate
  // unknown node from the already-linked edges incident to it, so that
  // unknown-unknown edges can be relation-linked.
  void DeriveUnknownVertices(Agp* agp, size_t node,
                             sparql::Endpoint& endpoint) const;

 private:
  // Uncached Algorithm 1 (the actual endpoint round-trip + ranking).
  std::vector<RelevantVertex> LinkEntityUncached(
      const std::string& label, sparql::Endpoint& endpoint) const;

  // Ranking half of Algorithm 1, shared by the serial and batched paths:
  // scores (vertex IRI, description) result rows against `label` and keeps
  // the top-k vertices.
  std::vector<RelevantVertex> ScoreEntityRows(
      const std::string& label,
      const std::vector<std::pair<std::string, std::string>>& rows) const;

  // Q(l_n) of Sec. 5.1: disjunction of the label's content words, the
  // argument of <bif:contains>.
  static std::string TextContainsExpr(const std::string& label);

  // Returns the predicate IRIs on the outgoing (vertex_is_object false) or
  // incoming (true) edges of an anchor vertex, in endpoint result order;
  // nullopt if the lookup failed.
  using PredicateLookup =
      std::function<std::optional<std::vector<std::string>>(
          const std::string& anchor_iri, bool vertex_is_object)>;

  // Ranking half of Algorithm 2, shared by the serial and batched paths:
  // walks the edge's anchor vertices in order, pulls each anchor's
  // predicate lists through `lookup`, dedups and scores them.
  std::vector<RelevantPredicate> AssembleEdgePredicates(
      const Agp& agp, const qu::Pgp::Edge& edge, sparql::Endpoint& endpoint,
      const PredicateLookup& lookup) const;

  // Wave halves of LinkBatched: entity probes per distinct node label, then
  // predicate probes per distinct (anchor vertex, direction) of the given
  // edges.  Cache hits resolve per probe and shrink the wave.
  void LinkNodesBatched(const qu::Pgp& pgp, Agp* agp,
                        sparql::Endpoint& endpoint) const;
  void LinkEdgesBatched(Agp* agp, const std::vector<size_t>& edge_indices,
                        sparql::Endpoint& endpoint) const;

  std::string PredicateDescription(const std::string& iri,
                                   sparql::Endpoint& endpoint) const;

  const KgqanConfig* config_;
  const embed::SemanticAffinity* affinity_;
  util::ThreadPool* pool_;   // Not owned; nullptr = serial.
  LinkingCache* cache_;      // Not owned; nullptr = no memoization.
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_LINKER_H_
