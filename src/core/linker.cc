#include "core/linker.h"

#include <algorithm>
#include <future>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace kgqan::core {

namespace {

// Truncates a scored vector to its top-k by score (stable for ties).
template <typename T>
void KeepTopK(std::vector<T>& items, size_t k) {
  std::stable_sort(items.begin(), items.end(),
                   [](const T& a, const T& b) { return a.score > b.score; });
  if (items.size() > k) items.resize(k);
}

}  // namespace

std::string JitLinker::PotentialRelevantVerticesQuery(
    const std::string& label, size_t max_vr) {
  // Q(l_n): disjunction of the label's content words (Sec. 5.1).
  std::vector<std::string> words = text::ContentTokens(label);
  std::string expr;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) expr += " OR ";
    expr += "'" + words[i] + "'";
  }
  return "SELECT ?v ?p ?d WHERE { ?v ?p ?d . ?d <bif:contains> \"" + expr +
         "\" . } LIMIT " + std::to_string(max_vr);
}

std::vector<RelevantVertex> JitLinker::LinkEntity(
    const std::string& label, sparql::Endpoint& endpoint) const {
  if (cache_ == nullptr) return LinkEntityUncached(label, endpoint);
  std::string kg = endpoint.cache_identity();
  if (auto cached = cache_->GetVertices(label, kg); cached.has_value()) {
    return *std::move(cached);
  }
  std::vector<RelevantVertex> out = LinkEntityUncached(label, endpoint);
  cache_->PutVertices(label, kg, out);
  return out;
}

std::vector<RelevantVertex> JitLinker::LinkEntityUncached(
    const std::string& label, sparql::Endpoint& endpoint) const {
  std::vector<RelevantVertex> out;
  if (label.empty()) return out;
  auto rs = endpoint.Query(
      PotentialRelevantVerticesQuery(label, config_->max_fetched_vertices));
  if (!rs.ok()) return out;

  // Best affinity per vertex across its descriptions.
  std::unordered_map<std::string, double> best;
  auto v_col = rs->ColumnIndex("v");
  auto d_col = rs->ColumnIndex("d");
  if (!v_col.has_value() || !d_col.has_value()) return out;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    const auto& v = rs->At(r, *v_col);
    const auto& d = rs->At(r, *d_col);
    if (!v.has_value() || !d.has_value()) continue;
    if (!v->IsIri()) continue;
    double score = affinity_->NormalizedScore(label, d->value);
    auto [it, inserted] = best.emplace(v->value, score);
    if (!inserted && score > it->second) it->second = score;
  }
  out.reserve(best.size());
  for (const auto& [iri, score] : best) {
    out.push_back(RelevantVertex{iri, score});
  }
  KeepTopK(out, config_->top_k_vertices);
  return out;
}

std::string JitLinker::PredicateDescription(const std::string& iri,
                                            sparql::Endpoint& endpoint) const {
  if (rdf::IsHumanReadableIri(iri)) {
    // d_p = p: the URI's local name, split into words ("nearestCity" ->
    // "nearest city").
    return util::Join(util::SplitIdentifierWords(rdf::IriLocalName(iri)),
                      " ");
  }
  // Cryptic predicate (e.g. wdg:P227): fetch its description from the KG.
  std::string kg;
  if (cache_ != nullptr) {
    kg = endpoint.cache_identity();
    if (auto cached = cache_->GetPredicateDescription(iri, kg);
        cached.has_value()) {
      return *std::move(cached);
    }
  }
  std::string description(rdf::IriLocalName(iri));
  auto rs = endpoint.Query("SELECT ?d WHERE { <" + iri +
                           "> ?lp ?d . } LIMIT 8");
  if (rs.ok()) {
    for (size_t r = 0; r < rs->NumRows(); ++r) {
      const auto& d = rs->At(r, 0);
      if (d.has_value() && d->IsLiteral() &&
          (d->IsStringLiteral() || !d->lang.empty())) {
        description = d->value;
        break;
      }
    }
  }
  if (cache_ != nullptr) cache_->PutPredicateDescription(iri, kg, description);
  return description;
}

std::vector<RelevantPredicate> JitLinker::LinkRelation(
    const Agp& agp, const qu::Pgp::Edge& edge, size_t edge_index,
    sparql::Endpoint& endpoint) const {
  (void)edge_index;
  std::vector<RelevantPredicate> out;
  const std::string& relation_label = edge.label;

  // T_rv: union of relevant vertices of the two endpoints, remembering
  // which node each vertex annotates.
  std::vector<std::pair<std::string, size_t>> anchor_vertices;
  for (size_t node : {edge.a, edge.b}) {
    for (const RelevantVertex& rv : agp.node_vertices[node]) {
      anchor_vertices.emplace_back(rv.iri, node);
    }
  }

  // Cache predicate descriptions and scores across anchors.
  std::unordered_map<std::string, double> score_cache;
  auto predicate_score = [&](const std::string& p_iri) {
    auto it = score_cache.find(p_iri);
    if (it != score_cache.end()) return it->second;
    double s =
        affinity_->NormalizedScore(
            relation_label, PredicateDescription(p_iri, endpoint));
    score_cache.emplace(p_iri, s);
    return s;
  };

  std::unordered_set<std::string> seen;  // (p, v, o) dedup.
  for (const auto& [v_iri, node] : anchor_vertices) {
    // outgoingPredicate(v) and incomingPredicate(v) (Sec. 5.2); both
    // directions because the PGP is undirected.
    for (bool vertex_is_object : {false, true}) {
      std::string query =
          vertex_is_object
              ? "SELECT DISTINCT ?p WHERE { ?sub ?p <" + v_iri + "> . }"
              : "SELECT DISTINCT ?p WHERE { <" + v_iri + "> ?p ?obj . }";
      auto rs = endpoint.Query(query);
      if (!rs.ok()) continue;
      for (size_t r = 0; r < rs->NumRows(); ++r) {
        const auto& p = rs->At(r, 0);
        if (!p.has_value() || !p->IsIri()) continue;
        std::string key =
            p->value + "\x1f" + v_iri + (vertex_is_object ? "\x1fO" : "\x1fS");
        if (!seen.insert(key).second) continue;
        RelevantPredicate rp;
        rp.iri = p->value;
        rp.score = predicate_score(p->value);
        rp.anchor_iri = v_iri;
        rp.anchor_node = node;
        rp.vertex_is_object = vertex_is_object;
        out.push_back(std::move(rp));
      }
    }
  }
  KeepTopK(out, config_->top_k_predicates);
  return out;
}

Agp JitLinker::Link(const qu::Pgp& pgp, sparql::Endpoint& endpoint) const {
  Agp agp;
  agp.pgp = pgp;
  agp.node_vertices.resize(pgp.nodes().size());
  agp.edge_predicates.resize(pgp.edges().size());

  // Algorithm 1 per node: unknowns have no relevant vertices (line 1-2).
  // Each node is an independent pure function of (label, endpoint), so the
  // fan-out runs on the pool; joining in index order keeps the result
  // identical to the serial pipeline.
  if (pool_ != nullptr) {
    std::vector<std::pair<size_t, std::future<std::vector<RelevantVertex>>>>
        node_futures;
    for (size_t i = 0; i < pgp.nodes().size(); ++i) {
      const qu::Pgp::Node& node = pgp.nodes()[i];
      if (node.is_unknown) continue;
      node_futures.emplace_back(
          i, pool_->Submit([this, &node, &endpoint]() {
            return LinkEntity(node.label, endpoint);
          }));
    }
    for (auto& [i, future] : node_futures) {
      agp.node_vertices[i] = future.get();
    }
  } else {
    for (size_t i = 0; i < pgp.nodes().size(); ++i) {
      const qu::Pgp::Node& node = pgp.nodes()[i];
      if (node.is_unknown) continue;
      agp.node_vertices[i] = LinkEntity(node.label, endpoint);
    }
  }

  // Algorithm 2 per edge — first the edges with at least one annotated
  // endpoint.  Every such edge reads only the (now final) node_vertices,
  // so edges fan out too.
  std::vector<size_t> pending;
  std::vector<std::pair<size_t, std::future<std::vector<RelevantPredicate>>>>
      edge_futures;
  for (size_t e = 0; e < pgp.edges().size(); ++e) {
    const qu::Pgp::Edge& edge = pgp.edges()[e];
    if (agp.node_vertices[edge.a].empty() &&
        agp.node_vertices[edge.b].empty()) {
      pending.push_back(e);  // Unknown-unknown edge (path questions).
      continue;
    }
    if (pool_ != nullptr) {
      edge_futures.emplace_back(
          e, pool_->Submit([this, &agp, &edge, e, &endpoint]() {
            return LinkRelation(agp, edge, e, endpoint);
          }));
    } else {
      agp.edge_predicates[e] = LinkRelation(agp, pgp.edges()[e], e, endpoint);
    }
  }
  for (auto& [e, future] : edge_futures) {
    agp.edge_predicates[e] = future.get();
  }

  // Path questions produce edges between two unknowns, which have no
  // relevant vertices yet.  Derive candidate vertices for an intermediate
  // unknown from the already-linked edges incident to it (executing their
  // top partially-instantiated triples), then link the pending edge
  // against those.
  for (size_t e : pending) {
    const qu::Pgp::Edge& edge = pgp.edges()[e];
    for (size_t node : {edge.a, edge.b}) {
      if (!agp.node_vertices[node].empty()) continue;
      DeriveUnknownVertices(&agp, node, endpoint);
    }
    agp.edge_predicates[e] = LinkRelation(agp, pgp.edges()[e], e, endpoint);
  }
  return agp;
}

void JitLinker::DeriveUnknownVertices(Agp* agp, size_t node,
                                      sparql::Endpoint& endpoint) const {
  constexpr size_t kMaxDerived = 10;
  constexpr size_t kPredicatesPerEdge = 3;
  std::unordered_map<std::string, double> best;
  const auto& edges = agp->pgp.edges();
  for (size_t e2 = 0; e2 < edges.size(); ++e2) {
    const qu::Pgp::Edge& edge2 = edges[e2];
    if (edge2.a != node && edge2.b != node) continue;
    size_t taken = 0;
    for (const RelevantPredicate& rp : agp->edge_predicates[e2]) {
      if (rp.anchor_node == node) continue;  // Anchored on this unknown.
      if (taken++ >= kPredicatesPerEdge) break;
      // The anchor vertex occupies one side of the predicate; this unknown
      // binds the other side.
      std::string query =
          rp.vertex_is_object
              ? "SELECT DISTINCT ?x WHERE { ?x <" + rp.iri + "> <" +
                    rp.anchor_iri + "> . } LIMIT " +
                    std::to_string(kMaxDerived)
              : "SELECT DISTINCT ?x WHERE { <" + rp.anchor_iri + "> <" +
                    rp.iri + "> ?x . } LIMIT " + std::to_string(kMaxDerived);
      auto rs = endpoint.Query(query);
      if (!rs.ok()) continue;
      for (size_t r = 0; r < rs->NumRows(); ++r) {
        const auto& x = rs->At(r, 0);
        if (!x.has_value() || !x->IsIri()) continue;
        auto [it, inserted] = best.emplace(x->value, rp.score);
        if (!inserted && rp.score > it->second) it->second = rp.score;
      }
    }
  }
  auto& derived = agp->node_vertices[node];
  for (const auto& [iri, score] : best) {
    derived.push_back(RelevantVertex{iri, score});
  }
  std::stable_sort(derived.begin(), derived.end(),
                   [](const RelevantVertex& a, const RelevantVertex& b) {
                     return a.score > b.score;
                   });
  if (derived.size() > kMaxDerived) derived.resize(kMaxDerived);
}

}  // namespace kgqan::core
