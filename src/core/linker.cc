#include "core/linker.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <future>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/tokenizer.h"
#include "util/cancel.h"
#include "util/string_util.h"

namespace kgqan::core {

namespace {

// Registry instrumentation for the two linking algorithms (shared across
// engines; resolved once).
obs::Histogram& EntityLinkLatency() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("linker.entity_link_ms");
  return histogram;
}

obs::Histogram& RelationLinkLatency() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("linker.relation_link_ms");
  return histogram;
}

// True when the calling thread's request deadline expired (and the config
// honours it).  Results produced on or after an expiry are partial — the
// underlying probes fail fast at the endpoint — so they must never reach
// the linking cache: a poisoned empty entry would outlive the request and
// serve wrong links to healthy questions.
bool Expired(const KgqanConfig* config) {
  return config->cooperative_cancellation && util::Cancelled();
}

// Truncates a scored vector to its top-k by score (stable for ties).
template <typename T>
void KeepTopK(std::vector<T>& items, size_t k) {
  std::stable_sort(items.begin(), items.end(),
                   [](const T& a, const T& b) { return a.score > b.score; });
  if (items.size() > k) items.resize(k);
}

}  // namespace

std::string JitLinker::TextContainsExpr(const std::string& label) {
  // Q(l_n): disjunction of the label's content words (Sec. 5.1).
  std::vector<std::string> words = text::ContentTokens(label);
  std::string expr;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) expr += " OR ";
    expr += "'" + words[i] + "'";
  }
  return expr;
}

std::string JitLinker::PotentialRelevantVerticesQuery(
    const std::string& label, size_t max_vr) {
  return "SELECT ?v ?p ?d WHERE { ?v ?p ?d . ?d <bif:contains> \"" +
         TextContainsExpr(label) + "\" . } LIMIT " + std::to_string(max_vr);
}

std::vector<RelevantVertex> JitLinker::LinkEntity(
    const std::string& label, sparql::Endpoint& endpoint) const {
  if (cache_ == nullptr) return LinkEntityUncached(label, endpoint);
  std::string kg = endpoint.cache_identity();
  if (auto cached = cache_->GetVertices(label, kg); cached.has_value()) {
    return *std::move(cached);
  }
  std::vector<RelevantVertex> out = LinkEntityUncached(label, endpoint);
  if (!Expired(config_)) cache_->PutVertices(label, kg, out);
  return out;
}

std::vector<RelevantVertex> JitLinker::LinkEntityUncached(
    const std::string& label, sparql::Endpoint& endpoint) const {
  std::vector<RelevantVertex> out;
  if (label.empty()) return out;
  obs::ScopedSpan span("linking.entity");
  span.AddAttribute("label", label);
  struct LatencyRecorder {
    const obs::ScopedSpan& span;
    ~LatencyRecorder() { EntityLinkLatency().Record(span.ElapsedMillis()); }
  } recorder{span};
  auto rs = endpoint.Query(
      PotentialRelevantVerticesQuery(label, config_->max_fetched_vertices));
  if (!rs.ok()) return out;

  auto v_col = rs->ColumnIndex("v");
  auto d_col = rs->ColumnIndex("d");
  if (!v_col.has_value() || !d_col.has_value()) return out;
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(rs->NumRows());
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    const auto& v = rs->At(r, *v_col);
    const auto& d = rs->At(r, *d_col);
    if (!v.has_value() || !d.has_value()) continue;
    if (!v->IsIri()) continue;
    rows.emplace_back(v->value, d->value);
  }
  return ScoreEntityRows(label, rows);
}

std::vector<RelevantVertex> JitLinker::ScoreEntityRows(
    const std::string& label,
    const std::vector<std::pair<std::string, std::string>>& rows) const {
  // Best affinity per vertex across its descriptions.
  std::unordered_map<std::string, double> best;
  for (const auto& [v_iri, d_value] : rows) {
    double score = affinity_->NormalizedScore(label, d_value);
    auto [it, inserted] = best.emplace(v_iri, score);
    if (!inserted && score > it->second) it->second = score;
  }
  std::vector<RelevantVertex> out;
  out.reserve(best.size());
  for (const auto& [iri, score] : best) {
    out.push_back(RelevantVertex{iri, score});
  }
  KeepTopK(out, config_->top_k_vertices);
  return out;
}

std::string JitLinker::PredicateDescription(const std::string& iri,
                                            sparql::Endpoint& endpoint) const {
  if (rdf::IsHumanReadableIri(iri)) {
    // d_p = p: the URI's local name, split into words ("nearestCity" ->
    // "nearest city").
    return util::Join(util::SplitIdentifierWords(rdf::IriLocalName(iri)),
                      " ");
  }
  // Cryptic predicate (e.g. wdg:P227): fetch its description from the KG.
  std::string kg;
  if (cache_ != nullptr) {
    kg = endpoint.cache_identity();
    if (auto cached = cache_->GetPredicateDescription(iri, kg);
        cached.has_value()) {
      return *std::move(cached);
    }
  }
  std::string description(rdf::IriLocalName(iri));
  auto rs = endpoint.Query("SELECT ?d WHERE { <" + iri +
                           "> ?lp ?d . } LIMIT 8");
  if (rs.ok()) {
    for (size_t r = 0; r < rs->NumRows(); ++r) {
      const auto& d = rs->At(r, 0);
      if (d.has_value() && d->IsLiteral() &&
          (d->IsStringLiteral() || !d->lang.empty())) {
        description = d->value;
        break;
      }
    }
  }
  if (cache_ != nullptr && !Expired(config_)) {
    cache_->PutPredicateDescription(iri, kg, description);
  }
  return description;
}

std::vector<RelevantPredicate> JitLinker::AssembleEdgePredicates(
    const Agp& agp, const qu::Pgp::Edge& edge, sparql::Endpoint& endpoint,
    const PredicateLookup& lookup) const {
  std::vector<RelevantPredicate> out;
  const std::string& relation_label = edge.label;

  // T_rv: union of relevant vertices of the two endpoints, remembering
  // which node each vertex annotates.
  std::vector<std::pair<std::string, size_t>> anchor_vertices;
  for (size_t node : {edge.a, edge.b}) {
    for (const RelevantVertex& rv : agp.node_vertices[node]) {
      anchor_vertices.emplace_back(rv.iri, node);
    }
  }

  // Cache predicate descriptions and scores across anchors.
  std::unordered_map<std::string, double> score_cache;
  auto predicate_score = [&](const std::string& p_iri) {
    auto it = score_cache.find(p_iri);
    if (it != score_cache.end()) return it->second;
    double s =
        affinity_->NormalizedScore(
            relation_label, PredicateDescription(p_iri, endpoint));
    score_cache.emplace(p_iri, s);
    return s;
  };

  std::unordered_set<std::string> seen;  // (p, v, o) dedup.
  for (const auto& [v_iri, node] : anchor_vertices) {
    // outgoingPredicate(v) and incomingPredicate(v) (Sec. 5.2); both
    // directions because the PGP is undirected.
    for (bool vertex_is_object : {false, true}) {
      std::optional<std::vector<std::string>> preds =
          lookup(v_iri, vertex_is_object);
      if (!preds.has_value()) continue;
      for (const std::string& p_iri : *preds) {
        std::string key =
            p_iri + "\x1f" + v_iri + (vertex_is_object ? "\x1fO" : "\x1fS");
        if (!seen.insert(key).second) continue;
        RelevantPredicate rp;
        rp.iri = p_iri;
        rp.score = predicate_score(p_iri);
        rp.anchor_iri = v_iri;
        rp.anchor_node = node;
        rp.vertex_is_object = vertex_is_object;
        out.push_back(std::move(rp));
      }
    }
  }
  KeepTopK(out, config_->top_k_predicates);
  return out;
}

std::vector<RelevantPredicate> JitLinker::LinkRelation(
    const Agp& agp, const qu::Pgp::Edge& edge, size_t edge_index,
    sparql::Endpoint& endpoint) const {
  (void)edge_index;
  obs::ScopedSpan span("linking.relation");
  span.AddAttribute("label", edge.label);
  // Serial per-probe lookup: one endpoint request per (anchor, direction),
  // issued in walk order — the exact PR 1 behaviour.
  std::vector<RelevantPredicate> out = AssembleEdgePredicates(
      agp, edge, endpoint,
      [&endpoint](const std::string& v_iri, bool vertex_is_object)
          -> std::optional<std::vector<std::string>> {
        std::string query =
            vertex_is_object
                ? "SELECT DISTINCT ?p WHERE { ?sub ?p <" + v_iri + "> . }"
                : "SELECT DISTINCT ?p WHERE { <" + v_iri + "> ?p ?obj . }";
        auto rs = endpoint.Query(query);
        if (!rs.ok()) return std::nullopt;
        std::vector<std::string> preds;
        preds.reserve(rs->NumRows());
        for (size_t r = 0; r < rs->NumRows(); ++r) {
          const auto& p = rs->At(r, 0);
          if (!p.has_value() || !p->IsIri()) continue;
          preds.push_back(p->value);
        }
        return preds;
      });
  RelationLinkLatency().Record(span.ElapsedMillis());
  return out;
}

void JitLinker::LinkNodesBatched(const qu::Pgp& pgp, Agp* agp,
                                 sparql::Endpoint& endpoint) const {
  obs::ScopedSpan wave_span("linking.node_wave");
  const std::string kg =
      cache_ != nullptr ? endpoint.cache_identity() : std::string();

  // One probe per distinct node label, in first-encounter order; cache hits
  // and empty labels resolve immediately and shrink the wave.
  std::unordered_map<std::string, std::vector<RelevantVertex>> resolved;
  std::vector<std::string> probes;
  std::unordered_set<std::string> enqueued;
  for (const qu::Pgp::Node& node : pgp.nodes()) {
    if (node.is_unknown) continue;
    const std::string& label = node.label;
    if (resolved.count(label) > 0 || enqueued.count(label) > 0) continue;
    if (label.empty()) {
      resolved.emplace(label, std::vector<RelevantVertex>());
      continue;
    }
    if (cache_ != nullptr) {
      if (auto cached = cache_->GetVertices(label, kg); cached.has_value()) {
        resolved.emplace(label, *std::move(cached));
        continue;
      }
    }
    enqueued.insert(label);
    probes.push_back(label);
  }

  const size_t batch = config_->max_batch_size > 0 ? config_->max_batch_size
                                                   : size_t{1};
  std::vector<std::vector<std::string>> chunks;
  for (size_t i = 0; i < probes.size(); i += batch) {
    chunks.emplace_back(probes.begin() + static_cast<ptrdiff_t>(i),
                        probes.begin() + static_cast<ptrdiff_t>(
                                             std::min(probes.size(), i + batch)));
  }

  // One UNION branch per probe: `?probe` (an integer literal VALUES
  // binding) demultiplexes rows back to their originating probe.  No
  // query-level LIMIT — the per-probe maxVR cap is applied during demux so
  // each probe sees exactly the rows its own LIMITed query would return.
  auto run_chunk = [this, &endpoint](const std::vector<std::string>& chunk) {
    obs::ScopedSpan batch_span("linking.probe_batch");
    if (batch_span.recording()) {
      batch_span.AddAttribute("probes", std::to_string(chunk.size()));
    }
    std::string q = "SELECT ?probe ?v ?d WHERE { ";
    for (size_t k = 0; k < chunk.size(); ++k) {
      if (k > 0) q += "UNION ";
      q += "{ VALUES ?probe { " + std::to_string(k) +
           " } ?v ?p ?d . ?d <bif:contains> \"" + TextContainsExpr(chunk[k]) +
           "\" . } ";
    }
    q += "}";
    return endpoint.QueryBatch(q, chunk.size());
  };
  std::vector<util::StatusOr<sparql::ResultSet>> results;
  results.reserve(chunks.size());
  if (pool_ != nullptr && chunks.size() > 1) {
    std::vector<std::future<util::StatusOr<sparql::ResultSet>>> futures;
    futures.reserve(chunks.size());
    for (const auto& chunk : chunks) {
      futures.push_back(
          pool_->Submit([&run_chunk, &chunk]() { return run_chunk(chunk); }));
    }
    for (auto& f : futures) results.push_back(f.get());
  } else {
    for (const auto& chunk : chunks) results.push_back(run_chunk(chunk));
  }

  for (size_t c = 0; c < chunks.size(); ++c) {
    const std::vector<std::string>& chunk = chunks[c];
    const auto& rs = results[c];
    // Per-probe (v, d) rows; raw_seen counts rows before the IRI filter so
    // truncation matches the serial query's LIMIT semantics.
    std::vector<std::vector<std::pair<std::string, std::string>>> rows(
        chunk.size());
    std::vector<size_t> raw_seen(chunk.size(), 0);
    if (rs.ok()) {
      auto probe_col = rs->ColumnIndex("probe");
      auto v_col = rs->ColumnIndex("v");
      auto d_col = rs->ColumnIndex("d");
      if (probe_col.has_value() && v_col.has_value() && d_col.has_value()) {
        for (size_t r = 0; r < rs->NumRows(); ++r) {
          const auto& probe = rs->At(r, *probe_col);
          if (!probe.has_value()) continue;
          size_t k = static_cast<size_t>(
              std::strtoul(probe->value.c_str(), nullptr, 10));
          if (k >= chunk.size()) continue;
          if (raw_seen[k]++ >= config_->max_fetched_vertices) continue;
          const auto& v = rs->At(r, *v_col);
          const auto& d = rs->At(r, *d_col);
          if (!v.has_value() || !d.has_value()) continue;
          if (!v->IsIri()) continue;
          rows[k].emplace_back(v->value, d->value);
        }
      }
    }
    for (size_t k = 0; k < chunk.size(); ++k) {
      std::vector<RelevantVertex> out = ScoreEntityRows(chunk[k], rows[k]);
      if (cache_ != nullptr && !Expired(config_)) {
        cache_->PutVertices(chunk[k], kg, out);
      }
      resolved.emplace(chunk[k], std::move(out));
    }
  }

  for (size_t i = 0; i < pgp.nodes().size(); ++i) {
    const qu::Pgp::Node& node = pgp.nodes()[i];
    if (node.is_unknown) continue;
    agp->node_vertices[i] = resolved[node.label];
  }
}

void JitLinker::LinkEdgesBatched(Agp* agp,
                                 const std::vector<size_t>& edge_indices,
                                 sparql::Endpoint& endpoint) const {
  obs::ScopedSpan wave_span("linking.edge_wave");
  const std::string kg =
      cache_ != nullptr ? endpoint.cache_identity() : std::string();
  struct Probe {
    std::string iri;
    bool vertex_is_object;
  };
  auto key_of = [](const std::string& iri, bool vertex_is_object) {
    return iri + (vertex_is_object ? "\x1fI" : "\x1fO");
  };

  // One probe per distinct (anchor vertex, direction) across the wave's
  // edges, in the walk order of the serial path; nullopt marks a failed
  // chunk (an anchor whose own query would have failed).
  std::unordered_map<std::string, std::optional<std::vector<std::string>>>
      resolved;
  std::vector<Probe> probes;
  std::unordered_set<std::string> enqueued;
  const auto& edges = agp->pgp.edges();
  for (size_t e : edge_indices) {
    const qu::Pgp::Edge& edge = edges[e];
    for (size_t node : {edge.a, edge.b}) {
      for (const RelevantVertex& rv : agp->node_vertices[node]) {
        for (bool vertex_is_object : {false, true}) {
          std::string key = key_of(rv.iri, vertex_is_object);
          if (resolved.count(key) > 0 || !enqueued.insert(key).second) {
            continue;
          }
          if (cache_ != nullptr) {
            if (auto cached =
                    cache_->GetAnchorPredicates(rv.iri, vertex_is_object, kg);
                cached.has_value()) {
              resolved.emplace(key, *std::move(cached));
              continue;
            }
          }
          probes.push_back(Probe{rv.iri, vertex_is_object});
        }
      }
    }
  }

  const size_t batch = config_->max_batch_size > 0 ? config_->max_batch_size
                                                   : size_t{1};
  std::vector<std::vector<Probe>> chunks;
  for (size_t i = 0; i < probes.size(); i += batch) {
    chunks.emplace_back(probes.begin() + static_cast<ptrdiff_t>(i),
                        probes.begin() + static_cast<ptrdiff_t>(
                                             std::min(probes.size(), i + batch)));
  }

  // One UNION branch per direction: `?probe` 0 = outgoing, 1 = incoming,
  // with the chunk's anchors of that direction as `VALUES ?anchor`.  The
  // evaluator expands VALUES in written order, so each anchor's rows are
  // contiguous and DISTINCT keeps the first occurrence of every
  // (probe, anchor, p) — the same predicate list, in the same order, as the
  // anchor's own `SELECT DISTINCT ?p` query.
  auto run_chunk = [&endpoint](const std::vector<Probe>& chunk) {
    obs::ScopedSpan batch_span("linking.probe_batch");
    if (batch_span.recording()) {
      batch_span.AddAttribute("probes", std::to_string(chunk.size()));
    }
    std::string q = "SELECT DISTINCT ?probe ?anchor ?p WHERE { ";
    bool first = true;
    for (int dir = 0; dir < 2; ++dir) {
      const bool vertex_is_object = dir == 1;
      std::string values;
      for (const Probe& pr : chunk) {
        if (pr.vertex_is_object == vertex_is_object) {
          values += "<" + pr.iri + "> ";
        }
      }
      if (values.empty()) continue;
      if (!first) q += "UNION ";
      first = false;
      q += "{ VALUES ?probe { " + std::to_string(dir) + " } VALUES ?anchor { " +
           values + "} " +
           (vertex_is_object ? "?sub ?p ?anchor . " : "?anchor ?p ?obj . ") +
           "} ";
    }
    q += "}";
    return endpoint.QueryBatch(q, chunk.size());
  };
  std::vector<util::StatusOr<sparql::ResultSet>> results;
  results.reserve(chunks.size());
  if (pool_ != nullptr && chunks.size() > 1) {
    std::vector<std::future<util::StatusOr<sparql::ResultSet>>> futures;
    futures.reserve(chunks.size());
    for (const auto& chunk : chunks) {
      futures.push_back(
          pool_->Submit([&run_chunk, &chunk]() { return run_chunk(chunk); }));
    }
    for (auto& f : futures) results.push_back(f.get());
  } else {
    for (const auto& chunk : chunks) results.push_back(run_chunk(chunk));
  }

  for (size_t c = 0; c < chunks.size(); ++c) {
    const std::vector<Probe>& chunk = chunks[c];
    const auto& rs = results[c];
    if (!rs.ok()) {
      for (const Probe& pr : chunk) {
        resolved[key_of(pr.iri, pr.vertex_is_object)] = std::nullopt;
      }
      continue;
    }
    // A probe without rows is a successful empty lookup, not a failure.
    for (const Probe& pr : chunk) {
      resolved[key_of(pr.iri, pr.vertex_is_object)] =
          std::vector<std::string>();
    }
    auto probe_col = rs->ColumnIndex("probe");
    auto anchor_col = rs->ColumnIndex("anchor");
    auto p_col = rs->ColumnIndex("p");
    if (probe_col.has_value() && anchor_col.has_value() && p_col.has_value()) {
      for (size_t r = 0; r < rs->NumRows(); ++r) {
        const auto& probe = rs->At(r, *probe_col);
        const auto& anchor = rs->At(r, *anchor_col);
        const auto& p = rs->At(r, *p_col);
        if (!probe.has_value() || !anchor.has_value() || !p.has_value()) {
          continue;
        }
        if (!p->IsIri()) continue;
        auto it = resolved.find(key_of(anchor->value, probe->value == "1"));
        if (it == resolved.end() || !it->second.has_value()) continue;
        it->second->push_back(p->value);
      }
    }
    if (cache_ != nullptr && !Expired(config_)) {
      for (const Probe& pr : chunk) {
        const auto& preds = resolved[key_of(pr.iri, pr.vertex_is_object)];
        if (preds.has_value()) {
          cache_->PutAnchorPredicates(pr.iri, pr.vertex_is_object, kg,
                                      *preds);
        }
      }
    }
  }

  for (size_t e : edge_indices) {
    agp->edge_predicates[e] = AssembleEdgePredicates(
        *agp, edges[e], endpoint,
        [&resolved, &key_of](const std::string& v_iri, bool vertex_is_object) {
          return resolved[key_of(v_iri, vertex_is_object)];
        });
  }
}

Agp JitLinker::LinkBatched(const qu::Pgp& pgp,
                           sparql::Endpoint& endpoint) const {
  Agp agp;
  agp.pgp = pgp;
  agp.node_vertices.resize(pgp.nodes().size());
  agp.edge_predicates.resize(pgp.edges().size());

  LinkNodesBatched(pgp, &agp, endpoint);

  std::vector<size_t> linkable;
  std::vector<size_t> pending;
  for (size_t e = 0; e < pgp.edges().size(); ++e) {
    const qu::Pgp::Edge& edge = pgp.edges()[e];
    if (agp.node_vertices[edge.a].empty() &&
        agp.node_vertices[edge.b].empty()) {
      pending.push_back(e);  // Unknown-unknown edge (path questions).
    } else {
      linkable.push_back(e);
    }
  }
  LinkEdgesBatched(&agp, linkable, endpoint);

  // Unknown-unknown edges depend on vertices derived from already-linked
  // edges, so they stay on the serial per-probe path (they are rare and
  // small: Sec. 5.2's path questions).
  for (size_t e : pending) {
    const qu::Pgp::Edge& edge = pgp.edges()[e];
    for (size_t node : {edge.a, edge.b}) {
      if (!agp.node_vertices[node].empty()) continue;
      DeriveUnknownVertices(&agp, node, endpoint);
    }
    agp.edge_predicates[e] = LinkRelation(agp, pgp.edges()[e], e, endpoint);
  }
  return agp;
}

Agp JitLinker::Link(const qu::Pgp& pgp, sparql::Endpoint& endpoint) const {
  if (config_->batch_linking) return LinkBatched(pgp, endpoint);
  Agp agp;
  agp.pgp = pgp;
  agp.node_vertices.resize(pgp.nodes().size());
  agp.edge_predicates.resize(pgp.edges().size());

  // Algorithm 1 per node: unknowns have no relevant vertices (line 1-2).
  // Each node is an independent pure function of (label, endpoint), so the
  // fan-out runs on the pool; joining in index order keeps the result
  // identical to the serial pipeline.
  if (pool_ != nullptr) {
    std::vector<std::pair<size_t, std::future<std::vector<RelevantVertex>>>>
        node_futures;
    for (size_t i = 0; i < pgp.nodes().size(); ++i) {
      const qu::Pgp::Node& node = pgp.nodes()[i];
      if (node.is_unknown) continue;
      node_futures.emplace_back(
          i, pool_->Submit([this, &node, &endpoint]() {
            return LinkEntity(node.label, endpoint);
          }));
    }
    for (auto& [i, future] : node_futures) {
      agp.node_vertices[i] = future.get();
    }
  } else {
    for (size_t i = 0; i < pgp.nodes().size(); ++i) {
      const qu::Pgp::Node& node = pgp.nodes()[i];
      if (node.is_unknown) continue;
      agp.node_vertices[i] = LinkEntity(node.label, endpoint);
    }
  }

  // Algorithm 2 per edge — first the edges with at least one annotated
  // endpoint.  Every such edge reads only the (now final) node_vertices,
  // so edges fan out too.
  std::vector<size_t> pending;
  std::vector<std::pair<size_t, std::future<std::vector<RelevantPredicate>>>>
      edge_futures;
  for (size_t e = 0; e < pgp.edges().size(); ++e) {
    const qu::Pgp::Edge& edge = pgp.edges()[e];
    if (agp.node_vertices[edge.a].empty() &&
        agp.node_vertices[edge.b].empty()) {
      pending.push_back(e);  // Unknown-unknown edge (path questions).
      continue;
    }
    if (pool_ != nullptr) {
      edge_futures.emplace_back(
          e, pool_->Submit([this, &agp, &edge, e, &endpoint]() {
            return LinkRelation(agp, edge, e, endpoint);
          }));
    } else {
      agp.edge_predicates[e] = LinkRelation(agp, pgp.edges()[e], e, endpoint);
    }
  }
  for (auto& [e, future] : edge_futures) {
    agp.edge_predicates[e] = future.get();
  }

  // Path questions produce edges between two unknowns, which have no
  // relevant vertices yet.  Derive candidate vertices for an intermediate
  // unknown from the already-linked edges incident to it (executing their
  // top partially-instantiated triples), then link the pending edge
  // against those.
  for (size_t e : pending) {
    const qu::Pgp::Edge& edge = pgp.edges()[e];
    for (size_t node : {edge.a, edge.b}) {
      if (!agp.node_vertices[node].empty()) continue;
      DeriveUnknownVertices(&agp, node, endpoint);
    }
    agp.edge_predicates[e] = LinkRelation(agp, pgp.edges()[e], e, endpoint);
  }
  return agp;
}

void JitLinker::DeriveUnknownVertices(Agp* agp, size_t node,
                                      sparql::Endpoint& endpoint) const {
  obs::ScopedSpan span("linking.derive_unknown");
  constexpr size_t kMaxDerived = 10;
  constexpr size_t kPredicatesPerEdge = 3;
  std::unordered_map<std::string, double> best;
  const auto& edges = agp->pgp.edges();
  for (size_t e2 = 0; e2 < edges.size(); ++e2) {
    const qu::Pgp::Edge& edge2 = edges[e2];
    if (edge2.a != node && edge2.b != node) continue;
    size_t taken = 0;
    for (const RelevantPredicate& rp : agp->edge_predicates[e2]) {
      if (rp.anchor_node == node) continue;  // Anchored on this unknown.
      if (taken++ >= kPredicatesPerEdge) break;
      // The anchor vertex occupies one side of the predicate; this unknown
      // binds the other side.
      std::string query =
          rp.vertex_is_object
              ? "SELECT DISTINCT ?x WHERE { ?x <" + rp.iri + "> <" +
                    rp.anchor_iri + "> . } LIMIT " +
                    std::to_string(kMaxDerived)
              : "SELECT DISTINCT ?x WHERE { <" + rp.anchor_iri + "> <" +
                    rp.iri + "> ?x . } LIMIT " + std::to_string(kMaxDerived);
      auto rs = endpoint.Query(query);
      if (!rs.ok()) continue;
      for (size_t r = 0; r < rs->NumRows(); ++r) {
        const auto& x = rs->At(r, 0);
        if (!x.has_value() || !x->IsIri()) continue;
        auto [it, inserted] = best.emplace(x->value, rp.score);
        if (!inserted && rp.score > it->second) it->second = rp.score;
      }
    }
  }
  auto& derived = agp->node_vertices[node];
  for (const auto& [iri, score] : best) {
    derived.push_back(RelevantVertex{iri, score});
  }
  std::stable_sort(derived.begin(), derived.end(),
                   [](const RelevantVertex& a, const RelevantVertex& b) {
                     return a.score > b.score;
                   });
  if (derived.size() > kMaxDerived) derived.resize(kMaxDerived);
}

}  // namespace kgqan::core
