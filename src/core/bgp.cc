#include "core/bgp.h"

#include <algorithm>
#include <unordered_map>

#include "rdf/term.h"

namespace kgqan::core {

namespace {

// One candidate instantiation of a single PGP edge.
struct EdgeCandidate {
  BgpTriple triple;
  // Vertex assignments this candidate commits to: node index -> IRI.
  // (At most two entries: the anchor node and, if bound, the other node.)
  std::vector<std::pair<size_t, std::string>> bindings;
  double score = 0.0;
};

double VertexScore(const Agp& agp, size_t node, const std::string& iri) {
  for (const RelevantVertex& rv : agp.node_vertices[node]) {
    if (rv.iri == iri) return rv.score;
  }
  return 0.0;
}

std::string VarName(const qu::Pgp::Node& node) {
  return "u" + std::to_string(node.var_id);
}

// Builds the ranked candidate list for one edge.
std::vector<EdgeCandidate> EdgeCandidates(const Agp& agp, size_t edge_index,
                                          size_t cap) {
  const qu::Pgp::Edge& edge = agp.pgp.edges()[edge_index];
  const auto& nodes = agp.pgp.nodes();
  std::vector<EdgeCandidate> out;

  for (const RelevantPredicate& rp : agp.edge_predicates[edge_index]) {
    size_t anchor = rp.anchor_node;
    size_t other = (anchor == edge.a) ? edge.b : edge.a;
    double anchor_score = VertexScore(agp, anchor, rp.anchor_iri);

    // The non-anchor side: a variable for unknowns, otherwise one of the
    // node's relevant vertices.
    std::vector<std::pair<BgpTerm, double>> other_terms;
    if (nodes[other].is_unknown) {
      other_terms.push_back({BgpTerm{true, VarName(nodes[other])}, 0.0});
    } else {
      for (const RelevantVertex& rv : agp.node_vertices[other]) {
        other_terms.push_back({BgpTerm{false, rv.iri}, rv.score});
      }
    }
    // Unknown anchors arise on path questions: the anchor vertex was only
    // *derived* to discover predicates, so the unknown stays a variable in
    // the query.
    const bool anchor_is_unknown = nodes[anchor].is_unknown;
    BgpTerm anchor_term = anchor_is_unknown
                              ? BgpTerm{true, VarName(nodes[anchor])}
                              : BgpTerm{false, rp.anchor_iri};
    for (auto& [other_term, other_score] : other_terms) {
      EdgeCandidate cand;
      if (rp.vertex_is_object) {
        cand.triple.s = other_term;
        cand.triple.o = anchor_term;
      } else {
        cand.triple.s = anchor_term;
        cand.triple.o = other_term;
      }
      cand.triple.predicate = rp.iri;
      cand.triple.score = anchor_score + rp.score + other_score;
      cand.score = cand.triple.score;
      if (!anchor_is_unknown) {
        cand.bindings.emplace_back(anchor, rp.anchor_iri);
      }
      if (!other_term.is_var) {
        cand.bindings.emplace_back(other, other_term.value);
      }
      out.push_back(std::move(cand));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const EdgeCandidate& a, const EdgeCandidate& b) {
                     return a.score > b.score;
                   });
  if (out.size() > cap) out.resize(cap);
  return out;
}

}  // namespace

std::vector<Bgp> BgpGenerator::Generate(const Agp& agp) const {
  const size_t num_edges = agp.pgp.edges().size();
  if (num_edges == 0) return {};

  std::vector<std::vector<EdgeCandidate>> per_edge;
  per_edge.reserve(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    per_edge.push_back(EdgeCandidates(agp, e, config_->max_edge_candidates));
    if (per_edge.back().empty()) return {};  // Unlinkable edge.
  }

  // Cartesian product with consistent per-node vertex assignments, capped.
  constexpr size_t kMaxCombos = 4096;
  std::vector<Bgp> bgps;
  std::vector<const EdgeCandidate*> chosen(num_edges, nullptr);
  std::unordered_map<size_t, std::string> assignment;

  auto recurse = [&](auto&& self, size_t edge) -> void {
    if (bgps.size() >= kMaxCombos) return;
    if (edge == num_edges) {
      Bgp bgp;
      double sum = 0.0;
      for (const EdgeCandidate* c : chosen) {
        bgp.triples.push_back(c->triple);
        sum += c->triple.score;
      }
      bgp.score = sum / static_cast<double>(num_edges);  // Eq. 2.
      bgps.push_back(std::move(bgp));
      return;
    }
    for (const EdgeCandidate& cand : per_edge[edge]) {
      // Check consistency with vertices already committed for these nodes.
      bool ok = true;
      for (const auto& [node, iri] : cand.bindings) {
        auto it = assignment.find(node);
        if (it != assignment.end() && it->second != iri) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      std::vector<size_t> added;
      for (const auto& [node, iri] : cand.bindings) {
        if (assignment.emplace(node, iri).second) added.push_back(node);
      }
      chosen[edge] = &cand;
      self(self, edge + 1);
      for (size_t node : added) assignment.erase(node);
      if (bgps.size() >= kMaxCombos) return;
    }
  };
  recurse(recurse, 0);

  std::stable_sort(bgps.begin(), bgps.end(),
                   [](const Bgp& a, const Bgp& b) { return a.score > b.score; });
  if (bgps.size() > config_->max_queries) bgps.resize(config_->max_queries);
  return bgps;
}

namespace {

std::string RenderTerm(const BgpTerm& term) {
  if (term.is_var) return "?" + term.value;
  return "<" + term.value + ">";
}

std::string RenderTriples(const Bgp& bgp) {
  std::string out;
  for (const BgpTriple& t : bgp.triples) {
    out += "  " + RenderTerm(t.s) + " <" + t.predicate + "> " +
           RenderTerm(t.o) + " .\n";
  }
  return out;
}

}  // namespace

std::string BgpGenerator::ToSelectSparql(const Bgp& bgp,
                                         const std::string& unknown_var) {
  std::string out = "SELECT DISTINCT ?" + unknown_var + " ?c WHERE {\n";
  out += RenderTriples(bgp);
  out += "  OPTIONAL { ?" + unknown_var + " <" +
         std::string(rdf::vocab::kRdfType) + "> ?c . }\n";
  out += "}\n";
  return out;
}

std::string BgpGenerator::ToAskSparql(const Bgp& bgp) {
  return "ASK {\n" + RenderTriples(bgp) + "}\n";
}

}  // namespace kgqan::core
