// Multi-intention questions — the paper's future-work extension
// (footnote 12): questions with two intentions, e.g. "When and where did
// Covid-19 start?".
//
// The decomposition approach follows the paper's framing of intentions as
// separate main unknowns: the double question-word opener is split into
// one single-intention question per wh-word, each answered by the
// unmodified KGQAn pipeline, and the answers are returned labelled by
// intention.

#ifndef KGQAN_CORE_MULTI_INTENTION_H_
#define KGQAN_CORE_MULTI_INTENTION_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace kgqan::core {

struct IntentionAnswer {
  std::string intention;  // The question word, e.g. "when".
  std::string question;   // The reconstructed single-intention question.
  QaResponse response;
};

class MultiIntentionAnswerer {
 public:
  explicit MultiIntentionAnswerer(KgqanEngine* engine)
      : engine_(engine) {}

  // True iff the question opens with two coordinated question words
  // ("When and where ...", "Who and when ..." etc.).
  static bool IsMultiIntention(const std::string& question);

  // Splits `question` into its single-intention parts (exposed for
  // tests); empty when the question is not multi-intention.
  static std::vector<std::pair<std::string, std::string>> Split(
      const std::string& question);

  // Answers every intention; empty when the question is not
  // multi-intention (callers then fall back to KgqanEngine::Answer).
  std::vector<IntentionAnswer> Answer(const std::string& question,
                                      sparql::Endpoint& endpoint) const;

 private:
  KgqanEngine* engine_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_MULTI_INTENTION_H_
