// Answer post-filtration (Sec. 6): percolates the answers collected from
// executed queries using the predicted answer data type and — for string
// answers — the predicted semantic type against the answer's rdf:type
// class, entirely outside the RDF engine (KG-independent).

#ifndef KGQAN_CORE_FILTRATION_H_
#define KGQAN_CORE_FILTRATION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "embedding/affinity.h"
#include "nlp/answer_type.h"
#include "rdf/term.h"

namespace kgqan::core {

// An answer with its (optional) class types retrieved via the OPTIONAL
// <unknown, rdf:type, ?c> clause.
struct CandidateAnswer {
  rdf::Term term;
  std::vector<std::string> class_iris;
};

class Filtration {
 public:
  Filtration(const KgqanConfig* config,
             const embed::SemanticAffinity* affinity)
      : config_(config), affinity_(affinity) {}

  // Returns the answers that survive the data-type / semantic-type checks.
  std::vector<rdf::Term> Filter(
      const std::vector<CandidateAnswer>& candidates,
      const nlp::AnswerTypePrediction& prediction) const;

  // Data-type checks, exposed for tests.
  static bool LooksLikeDate(const rdf::Term& term);
  static bool LooksLikeNumber(const rdf::Term& term);

 private:
  bool SemanticTypeMatches(const CandidateAnswer& answer,
                           const std::string& semantic_type) const;

  const KgqanConfig* config_;
  const embed::SemanticAffinity* affinity_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_FILTRATION_H_
