// Engine configuration (the three parameters of Sec. 7.1.6 plus knobs for
// the ablation experiments).

#ifndef KGQAN_CORE_CONFIG_H_
#define KGQAN_CORE_CONFIG_H_

#include <cstddef>

#include "embedding/affinity.h"
#include "qu/triple_pattern_generator.h"

namespace kgqan::core {

// Physical triple-store layout behind the endpoint facade.  `kV1` is the
// original six-array hexastore; `kCompact` is the dictionary-compressed,
// snapshot-capable CSR store (store v2).  Either way answers are
// byte-identical (the compact differential battery's bar).
enum class StoreFormat {
  kV1 = 0,
  kCompact = 1,
};

struct KgqanConfig {
  // "Max Fetched Vertices": result cap of the potentialRelevantVertices
  // text query (maxVR; Sec. 5.1).
  size_t max_fetched_vertices = 400;

  // Top-k relevant vertices kept per PGP node after affinity ranking
  // ("in practice we use only k < maxVR vertices", Sec. 5.2.1).
  size_t top_k_vertices = 10;

  // "Number of Predicates": top-k relevant predicates per PGP edge.
  size_t top_k_predicates = 20;

  // "Max number of Queries": semantically equivalent SPARQL queries
  // generated per question (Alg. 3).
  size_t max_queries = 40;

  // Candidate instantiations kept per PGP edge before the cross-edge
  // product is ranked (keeps Alg. 3 line 1 tractable).
  size_t max_edge_candidates = 24;

  // Post-filtration (Sec. 6); the Figure 10 ablation turns this off.
  bool enable_filtration = true;

  // Leniency threshold for semantic-type filtering: an answer is dropped
  // only if its class label scores below this affinity against the
  // predicted semantic type.  Chosen low because semantic types are noisy
  // (Sec. 7.3.3: "filtering answers using semantic types is not as
  // accurate ... designed to avoid hurting the recall much").
  double semantic_type_threshold = 0.12;

  // Recall-first answer collection (Sec. 6): answers of the top-ranked
  // productive queries are unioned; filtration restores precision.  The
  // union stops after this many queries yielded (post-filtration) answers,
  // and queries scoring far below the best productive one (relative score
  // < score_gap of it) are not executed at all.
  size_t max_productive_queries = 3;
  double score_gap = 0.85;

  // Worker threads for the JIT-linking fan-out and candidate-query
  // execution (not a paper parameter).  0 = hardware concurrency; 1 runs
  // the original fully serial pipeline, preserving its exact behaviour
  // including per-endpoint query counts.  Parallel runs produce the same
  // answers (results are combined in rank order) but may speculatively
  // execute queries the serial early-exit would have skipped.
  size_t num_threads = 0;

  // Threads a *single* SPARQL query may use inside the endpoint's
  // evaluator (morsel-sharded BGP join steps; not a paper parameter).
  // Orthogonal to num_threads, which parallelizes *across* linking probes
  // and candidate queries: both kinds of task share one bounded pool
  // budget without deadlock (see util::ParallelFor).  0 = hardware
  // concurrency; 1 keeps the exact legacy serial evaluator.  Applied to an
  // endpoint via KgqanEngine::ConfigureEndpoint (the serving front-end
  // does this at startup).
  size_t intra_query_threads = 1;

  // Columnar (vectorized) SPARQL evaluation (not a paper parameter):
  // solutions flow through the endpoint's evaluator as term-id column
  // batches with cardinality-planned join order and broadcast/hash/probe
  // kernels, instead of row-at-a-time nested loops.  Off (default) keeps
  // the row path; on, results are byte-identical (the differential
  // property test's bar) on every seed, thread count, and batch size.
  // Composes with intra_query_threads.  Applied to an endpoint via
  // KgqanEngine::ConfigureEndpoint, like intra_query_threads.
  bool vectorized_eval = false;

  // Rows/triples a vectorized kernel processes between deadline
  // re-checks; also the columnar batch granularity.
  size_t eval_batch_size = 1024;

  // Total entries per mode of the sharded LRU linking cache keyed by
  // (phrase, KG identity, mode); repeated questions skip the endpoint
  // round-trips of Sec. 5 entirely.  0 disables caching.
  size_t linking_cache_capacity = 4096;

  // Cross-question answer cache (not a paper parameter): memoizes
  // candidate-query results under (canonical AST, endpoint generation)
  // keys, so repeated and paraphrased questions — whose candidates are
  // identical after variable renaming and triple reordering — skip SPARQL
  // execution entirely.  Off (default) preserves the exact uncached
  // execution path; on, answers are byte-identical (the rotating-seed
  // property test's bar) but endpoint traffic shrinks with stream
  // repetition.  Results observed under an expired deadline or across an
  // endpoint update are never inserted.
  bool answer_cache = false;

  // Total entry budget of the answer cache, split across its shards
  // (0 disables the cache even when answer_cache is true).
  size_t answer_cache_capacity = 1024;

  // Lock shards of the answer cache; more shards reduce contention when
  // many QaServer workers share one engine.
  size_t answer_cache_shards = 8;

  // Batched JIT linking (not a paper parameter): collect the
  // text-containment probes of a node wave and the outgoing/incoming
  // predicate probes of an edge wave into combined UNION/VALUES SELECTs,
  // so a wave costs ceil(probes / max_batch_size) endpoint round-trips
  // instead of one per probe.  Off (default) preserves the exact PR 1
  // per-probe behaviour, including per-endpoint request counts; on, the
  // produced AGP is byte-identical but round_trips shrink.
  bool batch_linking = false;

  // Probes folded into one batched wave query; larger batches mean fewer
  // round-trips but bigger queries (and a coarser endpoint row cap).
  size_t max_batch_size = 16;

  // Cooperative cancellation (not a paper parameter): the engine and the
  // linker poll the calling thread's util::CancelToken between pipeline
  // hops — before the linking waves, before each candidate query, and at
  // every endpoint exchange — so a request whose deadline expired stops
  // issuing linking probes and candidate queries and returns a
  // partial-or-empty result flagged deadline_exceeded.  Off makes the
  // pipeline ignore any bound token (bit-exact legacy behaviour); with no
  // token bound the polls are a thread-local read each, so the default
  // costs nothing outside the serving front-end.
  bool cooperative_cancellation = true;

  // EXPLAIN ANALYZE (not a paper parameter): collect per-operator runtime
  // statistics — rows in/out, planner cardinality estimate vs. actual,
  // kernel choice, batches — for every executed candidate query into
  // KgqanResult::candidates[i].operators, rendered by core::Explain.
  // Off (default) collects only for requests whose trace records spans
  // (sampled requests under the serving front-end), so saturated serving
  // pays nothing; on, every request collects.
  bool explain_analyze = false;

  // In-process KG shards behind the endpoint facade (not a paper
  // parameter): > 1 partitions the triples by subject hash across that
  // many store shards, evaluated with an ordered cross-shard merge that is
  // byte-identical to the single-store endpoint (the sharded equivalence
  // battery's bar).  <= 1 keeps the plain single-store endpoint.  Applied
  // when the endpoint is built via serve::MakeEndpoint.
  size_t endpoint_shards = 1;

  // Physical store layout for the endpoint built via serve::MakeEndpoint.
  // kCompact selects the compressed CSR store (single-store backend only;
  // endpoint_shards > 1 keeps the v1 sharded backend).
  StoreFormat store_format = StoreFormat::kV1;

  // Question-understanding model variant (Table 4 ablation).
  qu::TriplePatternGenerator::Options qu;

  // Affinity model variant (Table 4 ablation).
  embed::AffinityMode affinity_mode = embed::AffinityMode::kFineGrained;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_CONFIG_H_
