// Annotated Graph Pattern (Def. 5.3): the PGP with each node annotated by
// its relevant vertices (Def. 5.1) and each edge by its relevant
// predicates (Def. 5.2) from the target KG.

#ifndef KGQAN_CORE_AGP_H_
#define KGQAN_CORE_AGP_H_

#include <string>
#include <vector>

#include "qu/pgp.h"
#include "rdf/term.h"

namespace kgqan::core {

// A KG vertex relevant to a PGP node, with its semantic affinity score.
struct RelevantVertex {
  std::string iri;
  double score = 0.0;
};

// A KG predicate relevant to a PGP edge: the tuple <p, S(l_r, d_p), v, o>
// of Def. 5.2.  `anchor_iri` is the relevant vertex the predicate was
// discovered from, `anchor_node` the PGP node that vertex annotates, and
// `vertex_is_object` the o flag (true: the anchor vertex occurred as the
// object of the predicate).
struct RelevantPredicate {
  std::string iri;
  double score = 0.0;
  std::string anchor_iri;
  size_t anchor_node = 0;
  bool vertex_is_object = false;
};

struct Agp {
  qu::Pgp pgp;
  // Parallel to pgp.nodes(): relevant vertices per node (empty for
  // unknowns).
  std::vector<std::vector<RelevantVertex>> node_vertices;
  // Parallel to pgp.edges(): relevant predicates per edge.
  std::vector<std::vector<RelevantPredicate>> edge_predicates;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_AGP_H_
