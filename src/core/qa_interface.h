// Common interface implemented by KGQAn and the baseline QA systems, so
// the evaluation harness can drive them uniformly.

#ifndef KGQAN_CORE_QA_INTERFACE_H_
#define KGQAN_CORE_QA_INTERFACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "sparql/endpoint.h"

namespace kgqan::obs {
class Trace;
}  // namespace kgqan::obs

namespace kgqan::core {

// Wall-clock time spent in each of the three QA phases, in milliseconds
// (Figure 7).
struct PhaseTimings {
  double qu_ms = 0.0;
  double linking_ms = 0.0;
  double execution_ms = 0.0;

  double TotalMs() const { return qu_ms + linking_ms + execution_ms; }
};

struct QaResponse {
  // False iff question understanding produced nothing usable (the
  // "failure due to QU" class of Figure 8).
  bool understood = false;
  bool is_boolean = false;
  bool boolean_answer = false;
  std::vector<rdf::Term> answers;  // Empty for boolean questions.
  PhaseTimings timings;
};

// Runtime counters a QA system may expose to the evaluation harness
// (cumulative since construction).  Systems without caches report zeros.
struct RuntimeCounters {
  size_t linking_cache_hits = 0;
  size_t linking_cache_misses = 0;
  size_t answer_cache_hits = 0;
  size_t answer_cache_misses = 0;
};

class QaSystem {
 public:
  virtual ~QaSystem() = default;

  virtual std::string name() const = 0;

  // Cache / concurrency counters for the eval harness (Fig. 7 reporting).
  virtual RuntimeCounters Counters() const { return RuntimeCounters{}; }

  // Statistics of the per-KG pre-processing phase (Table 2).
  struct PreprocessStats {
    double seconds = 0.0;
    size_t index_bytes = 0;
  };

  // Performs whatever per-KG pre-processing the system requires before it
  // can answer questions at this endpoint.  KGQAn requires none.
  virtual PreprocessStats Preprocess(sparql::Endpoint& endpoint) = 0;

  // Answers a natural-language question against the endpoint.
  virtual QaResponse Answer(const std::string& question,
                            sparql::Endpoint& endpoint) = 0;

  // Trace-aware variant: systems that support per-question tracing record
  // their span tree and counters into `trace` (nullable).  The default
  // ignores the trace so baseline systems need no changes.
  virtual QaResponse Answer(const std::string& question,
                            sparql::Endpoint& endpoint, obs::Trace* trace) {
    (void)trace;
    return Answer(question, endpoint);
  }
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_QA_INTERFACE_H_
