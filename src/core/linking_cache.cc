#include "core/linking_cache.h"

#include "obs/trace.h"

namespace kgqan::core {

LinkingCache::LinkingCache(size_t capacity)
    : vertices_(capacity),
      descriptions_(capacity),
      anchor_predicates_(capacity) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  metric_hits_ = &registry.GetCounter("linking_cache.hits");
  metric_misses_ = &registry.GetCounter("linking_cache.misses");
  metric_evictions_ = &registry.GetCounter("linking_cache.evictions");
}

void LinkingCache::RecordLookup(bool hit) const {
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  (hit ? metric_hits_ : metric_misses_)->Add(1);
  if (obs::Trace* trace = obs::CurrentTrace()) {
    trace->AddCounter(hit ? obs::TraceCounter::kLinkingCacheHits
                          : obs::TraceCounter::kLinkingCacheMisses,
                      1);
  }
}

void LinkingCache::RecordEvictions(size_t n) const {
  if (n == 0) return;
  evictions_.fetch_add(n, std::memory_order_relaxed);
  metric_evictions_->Add(n);
}

std::string LinkingCache::MakeKey(std::string_view phrase,
                                  std::string_view kg) {
  std::string key;
  key.reserve(phrase.size() + kg.size() + 1);
  key.append(phrase);
  key.push_back('\x1f');  // Unit separator: cannot occur in IRIs.
  key.append(kg);
  return key;
}

std::optional<std::vector<RelevantVertex>> LinkingCache::GetVertices(
    std::string_view phrase, std::string_view kg) const {
  auto result = vertices_.Get(MakeKey(phrase, kg));
  RecordLookup(result.has_value());
  return result;
}

void LinkingCache::PutVertices(std::string_view phrase, std::string_view kg,
                               const std::vector<RelevantVertex>& vertices) {
  size_t evictions = 0;
  vertices_.Put(MakeKey(phrase, kg), vertices, &evictions);
  RecordEvictions(evictions);
}

std::optional<std::string> LinkingCache::GetPredicateDescription(
    std::string_view iri, std::string_view kg) const {
  auto result = descriptions_.Get(MakeKey(iri, kg));
  RecordLookup(result.has_value());
  return result;
}

void LinkingCache::PutPredicateDescription(std::string_view iri,
                                           std::string_view kg,
                                           const std::string& description) {
  size_t evictions = 0;
  descriptions_.Put(MakeKey(iri, kg), description, &evictions);
  RecordEvictions(evictions);
}

std::optional<std::vector<std::string>> LinkingCache::GetAnchorPredicates(
    std::string_view iri, bool vertex_is_object, std::string_view kg) const {
  std::string phrase(iri);
  phrase.push_back('\x1f');
  phrase.push_back(vertex_is_object ? 'S' : 'O');
  auto result = anchor_predicates_.Get(MakeKey(phrase, kg));
  RecordLookup(result.has_value());
  return result;
}

void LinkingCache::PutAnchorPredicates(
    std::string_view iri, bool vertex_is_object, std::string_view kg,
    const std::vector<std::string>& predicates) {
  std::string phrase(iri);
  phrase.push_back('\x1f');
  phrase.push_back(vertex_is_object ? 'S' : 'O');
  size_t evictions = 0;
  anchor_predicates_.Put(MakeKey(phrase, kg), predicates, &evictions);
  RecordEvictions(evictions);
}

LinkingCacheStats LinkingCache::stats() const {
  LinkingCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = vertices_.TotalEntries() + descriptions_.TotalEntries() +
                  anchor_predicates_.TotalEntries();
  return stats;
}

void LinkingCache::Clear() {
  vertices_.Clear();
  descriptions_.Clear();
  anchor_predicates_.Clear();
}

}  // namespace kgqan::core
