#include "core/linking_cache.h"

namespace kgqan::core {

LinkingCache::LinkingCache(size_t capacity)
    : vertices_(capacity),
      descriptions_(capacity),
      anchor_predicates_(capacity) {}

std::string LinkingCache::MakeKey(std::string_view phrase,
                                  std::string_view kg) {
  std::string key;
  key.reserve(phrase.size() + kg.size() + 1);
  key.append(phrase);
  key.push_back('\x1f');  // Unit separator: cannot occur in IRIs.
  key.append(kg);
  return key;
}

std::optional<std::vector<RelevantVertex>> LinkingCache::GetVertices(
    std::string_view phrase, std::string_view kg) const {
  auto result = vertices_.Get(MakeKey(phrase, kg));
  (result.has_value() ? hits_ : misses_)
      .fetch_add(1, std::memory_order_relaxed);
  return result;
}

void LinkingCache::PutVertices(std::string_view phrase, std::string_view kg,
                               const std::vector<RelevantVertex>& vertices) {
  size_t evictions = 0;
  vertices_.Put(MakeKey(phrase, kg), vertices, &evictions);
  if (evictions > 0) {
    evictions_.fetch_add(evictions, std::memory_order_relaxed);
  }
}

std::optional<std::string> LinkingCache::GetPredicateDescription(
    std::string_view iri, std::string_view kg) const {
  auto result = descriptions_.Get(MakeKey(iri, kg));
  (result.has_value() ? hits_ : misses_)
      .fetch_add(1, std::memory_order_relaxed);
  return result;
}

void LinkingCache::PutPredicateDescription(std::string_view iri,
                                           std::string_view kg,
                                           const std::string& description) {
  size_t evictions = 0;
  descriptions_.Put(MakeKey(iri, kg), description, &evictions);
  if (evictions > 0) {
    evictions_.fetch_add(evictions, std::memory_order_relaxed);
  }
}

std::optional<std::vector<std::string>> LinkingCache::GetAnchorPredicates(
    std::string_view iri, bool vertex_is_object, std::string_view kg) const {
  std::string phrase(iri);
  phrase.push_back('\x1f');
  phrase.push_back(vertex_is_object ? 'S' : 'O');
  auto result = anchor_predicates_.Get(MakeKey(phrase, kg));
  (result.has_value() ? hits_ : misses_)
      .fetch_add(1, std::memory_order_relaxed);
  return result;
}

void LinkingCache::PutAnchorPredicates(
    std::string_view iri, bool vertex_is_object, std::string_view kg,
    const std::vector<std::string>& predicates) {
  std::string phrase(iri);
  phrase.push_back('\x1f');
  phrase.push_back(vertex_is_object ? 'S' : 'O');
  size_t evictions = 0;
  anchor_predicates_.Put(MakeKey(phrase, kg), predicates, &evictions);
  if (evictions > 0) {
    evictions_.fetch_add(evictions, std::memory_order_relaxed);
  }
}

LinkingCacheStats LinkingCache::stats() const {
  LinkingCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = vertices_.TotalEntries() + descriptions_.TotalEntries() +
                  anchor_predicates_.TotalEntries();
  return stats;
}

void LinkingCache::Clear() {
  vertices_.Clear();
  descriptions_.Clear();
  anchor_predicates_.Clear();
}

}  // namespace kgqan::core
