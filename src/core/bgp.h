// Basic graph pattern enumeration, scoring (Eq. 2) and SPARQL rendering
// (Sec. 6, Algorithm 3).

#ifndef KGQAN_CORE_BGP_H_
#define KGQAN_CORE_BGP_H_

#include <string>
#include <vector>

#include "core/agp.h"
#include "core/config.h"

namespace kgqan::core {

// A subject/object position of an instantiated triple: a KG vertex IRI or
// a variable name (without the '?').
struct BgpTerm {
  bool is_var = false;
  std::string value;
};

struct BgpTriple {
  BgpTerm s;
  std::string predicate;  // IRI.
  BgpTerm o;
  double score = 0.0;     // s_va + s_p + s_vb of Eq. 2.
};

struct Bgp {
  std::vector<BgpTriple> triples;
  double score = 0.0;  // Eq. 2: mean of triple scores.
};

class BgpGenerator {
 public:
  explicit BgpGenerator(const KgqanConfig* config) : config_(config) {}

  // Algorithm 3 lines 1-3: enumerates valid vertex/predicate combinations
  // (consistent vertex assignments per PGP node), scores each BGP with
  // Eq. 2 and returns the top max_queries, best first.  Empty result: some
  // edge has no relevant predicate, i.e. the question cannot be mapped to
  // this KG.
  std::vector<Bgp> Generate(const Agp& agp) const;

  // Renders a SELECT query for the main unknown, extended with the
  // OPTIONAL <unknown, rdf:type, ?c> clause used by post-filtration.
  static std::string ToSelectSparql(const Bgp& bgp,
                                    const std::string& unknown_var);

  // Renders an ASK query (boolean questions).
  static std::string ToAskSparql(const Bgp& bgp);

 private:
  const KgqanConfig* config_;
};

}  // namespace kgqan::core

#endif  // KGQAN_CORE_BGP_H_
