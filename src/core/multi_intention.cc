#include "core/multi_intention.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "text/tokenizer.h"

namespace kgqan::core {

namespace {

constexpr std::array<const char*, 5> kWhWords = {"when", "where", "who",
                                                 "what", "which"};

bool IsWh(const std::string& word) {
  return std::find(kWhWords.begin(), kWhWords.end(), word) != kWhWords.end();
}

std::string Capitalize(std::string s) {
  if (!s.empty()) {
    s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  }
  return s;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> MultiIntentionAnswerer::Split(
    const std::string& question) {
  // Pattern: "<wh1> and <wh2> <rest>".
  std::vector<std::string> tokens = text::Tokenize(question);
  if (tokens.size() < 4) return {};
  if (!IsWh(tokens[0]) || tokens[1] != "and" || !IsWh(tokens[2])) return {};
  if (tokens[0] == tokens[2]) return {};

  // Reconstruct the shared remainder from the original text (everything
  // after the third token), preserving case and punctuation.
  size_t seen = 0;
  size_t pos = 0;
  while (pos < question.size() && seen < 3) {
    // Skip to the end of the current word.
    while (pos < question.size() &&
           !std::isalnum(static_cast<unsigned char>(question[pos]))) {
      ++pos;
    }
    while (pos < question.size() &&
           std::isalnum(static_cast<unsigned char>(question[pos]))) {
      ++pos;
    }
    ++seen;
  }
  while (pos < question.size() &&
         std::isspace(static_cast<unsigned char>(question[pos]))) {
    ++pos;
  }
  std::string rest = question.substr(pos);
  if (rest.empty()) return {};

  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back(tokens[0], Capitalize(tokens[0]) + " " + rest);
  out.emplace_back(tokens[2], Capitalize(tokens[2]) + " " + rest);
  return out;
}

bool MultiIntentionAnswerer::IsMultiIntention(const std::string& question) {
  return !Split(question).empty();
}

std::vector<IntentionAnswer> MultiIntentionAnswerer::Answer(
    const std::string& question, sparql::Endpoint& endpoint) const {
  std::vector<IntentionAnswer> out;
  for (auto& [wh, single] : Split(question)) {
    IntentionAnswer ia;
    ia.intention = wh;
    ia.question = single;
    ia.response = engine_->Answer(single, endpoint);
    out.push_back(std::move(ia));
  }
  return out;
}

}  // namespace kgqan::core
