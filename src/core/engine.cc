#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <map>
#include <optional>
#include <utility>

#include "obs/trace.h"
#include "sparql/canonical.h"
#include "sparql/parser.h"
#include "util/cancel.h"
#include "util/string_util.h"

namespace kgqan::core {

namespace {

// Resolves the configured thread count: 0 = hardware concurrency, 1 =
// serial (no pool at all).
std::unique_ptr<util::ThreadPool> MakePool(size_t num_threads) {
  size_t n =
      num_threads == 0 ? util::ThreadPool::DefaultThreads() : num_threads;
  if (n <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(n);
}

std::unique_ptr<LinkingCache> MakeCache(size_t capacity) {
  if (capacity == 0) return nullptr;
  return std::make_unique<LinkingCache>(capacity);
}

std::shared_ptr<AnswerCache> MakeAnswerCache(
    const KgqanConfig& config, std::shared_ptr<AnswerCache> shared) {
  if (shared != nullptr) return shared;
  if (!config.answer_cache || config.answer_cache_capacity == 0) {
    return nullptr;
  }
  return std::make_shared<AnswerCache>(config.answer_cache_capacity,
                                       config.answer_cache_shards);
}

// True when the calling thread's request deadline expired (and the config
// honours it): the pipeline hop that observes this stops issuing work.
bool Expired(const KgqanConfig& config) {
  return config.cooperative_cancellation && util::Cancelled();
}

}  // namespace

std::string Explain(const KgqanResult& result) {
  std::string out;
  out += "understood:  ";
  out += result.response.understood ? "yes" : "no";
  out += "\n";
  if (!result.response.understood) return out;
  out += "PGP:         " + result.pgp.DebugString() + "\n";
  out += "answer type: ";
  out += nlp::AnswerDataTypeName(result.answer_type.data_type);
  if (!result.answer_type.semantic_type.empty()) {
    out += " (" + result.answer_type.semantic_type + ")";
  }
  out += "\n";
  for (size_t n = 0; n < result.agp.node_vertices.size(); ++n) {
    const auto& vertices = result.agp.node_vertices[n];
    if (vertices.empty()) continue;
    out += "node \"" + result.pgp.nodes()[n].label + "\":\n";
    size_t shown = 0;
    for (const RelevantVertex& rv : vertices) {
      if (shown++ >= 3) break;
      out += "  <" + rv.iri + ">  " + util::FormatDouble(rv.score, 2) + "\n";
    }
  }
  for (size_t e = 0; e < result.agp.edge_predicates.size(); ++e) {
    const auto& preds = result.agp.edge_predicates[e];
    if (preds.empty()) continue;
    out += "edge \"" + result.pgp.edges()[e].label + "\":\n";
    size_t shown = 0;
    for (const RelevantPredicate& rp : preds) {
      if (shown++ >= 3) break;
      out += "  <" + rp.iri + ">  " + util::FormatDouble(rp.score, 2) + "\n";
    }
  }
  out += "queries:     " + std::to_string(result.queries_executed) + " of " +
         std::to_string(result.queries_generated) + " executed\n";
  size_t shown_candidates = 0;
  for (const CandidateQueryStats& c : result.candidates) {
    if (!c.executed) continue;
    if (shown_candidates++ >= 10) {
      out += "  ... (" +
             std::to_string(result.queries_executed - shown_candidates + 1) +
             " more)\n";
      break;
    }
    out += "  #" + std::to_string(c.rank) + "  score " +
           util::FormatDouble(c.score, 2) + "  " +
           util::FormatDouble(c.latency_ms, 1) + " ms  " +
           std::to_string(c.rows) + (c.rows == 1 ? " row\n" : " rows\n");
    // EXPLAIN ANALYZE: per-operator plan execution, estimate vs. actual.
    for (const sparql::OperatorStats& op : c.operators) {
      out += "     step " + std::to_string(op.order) + ": pattern " +
             std::to_string(op.pattern) + "  " + op.kernel + "  est " +
             std::to_string(op.estimate) + "  rows " +
             std::to_string(op.rows_in) + " -> " +
             std::to_string(op.rows_out);
      if (op.batches > 0) out += "  batches " + std::to_string(op.batches);
      if (op.morsels > 0) out += "  morsels " + std::to_string(op.morsels);
      out += "  " + util::FormatDouble(op.ms, 2) + " ms\n";
    }
  }
  out += "linking:     " + std::to_string(result.linking_requests) +
         " requests in " + std::to_string(result.linking_round_trips) +
         " round trips\n";
  if (result.trace_id != 0) {
    char trace_hex[24];
    std::snprintf(trace_hex, sizeof(trace_hex), "%016llx",
                  static_cast<unsigned long long>(result.trace_id));
    out += "trace:       " + std::string(trace_hex) + "\n";
  }
  if (result.response.is_boolean) {
    out += std::string("answer:      ") +
           (result.response.boolean_answer ? "true" : "false") + "\n";
  } else {
    for (const rdf::Term& a : result.response.answers) {
      out += "answer:      " + rdf::ToNTriples(a) + "\n";
    }
    if (result.response.answers.empty()) out += "answer:      (none)\n";
  }
  return out;
}

KgqanEngine::KgqanEngine(const KgqanConfig& config,
                         std::shared_ptr<AnswerCache> answer_cache)
    : config_(config),
      generator_(config.qu),
      affinity_(std::make_unique<embed::SemanticAffinity>(
          config.affinity_mode)),
      pool_(MakePool(config.num_threads)),
      cache_(MakeCache(config.linking_cache_capacity)),
      answer_cache_(MakeAnswerCache(config, std::move(answer_cache))),
      linker_(&config_, affinity_.get(), pool_.get(), cache_.get()),
      bgp_generator_(&config_),
      filtration_(&config_, affinity_.get()) {}

util::StatusOr<sparql::ResultSet> KgqanEngine::ExecuteCandidateQuery(
    const std::string& sparql_text, sparql::Endpoint& endpoint,
    bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  if (answer_cache_ == nullptr) return endpoint.Query(sparql_text);

  // The candidate text was rendered by BgpGenerator, so it always parses;
  // fall back to plain execution defensively if it ever does not.
  auto parsed = sparql::ParseQuery(sparql_text);
  if (!parsed.ok()) return endpoint.Query(sparql_text);
  sparql::CanonicalForm canon = sparql::Canonicalize(*parsed);
  if (!canon.cacheable) return endpoint.Query(sparql_text);

  // The generation captured *before* execution keys the entry; if an
  // endpoint update commits while the query runs, the re-check below fails
  // and the ambiguous result is discarded instead of cached.
  const size_t generation = endpoint.generation();
  const std::string kg = endpoint.cache_identity();
  if (std::shared_ptr<const sparql::ResultSet> hit =
          answer_cache_->Get(canon.key, kg)) {
    if (cache_hit != nullptr) *cache_hit = true;
    if (hit->is_ask() || canon.projection_original.empty()) return *hit;
    return hit->WithColumns(canon.projection_original);
  }

  auto rs = endpoint.Query(sparql_text);
  if (rs.ok() && !Expired(config_) && endpoint.generation() == generation) {
    // Stored under canonical column names so a hit from a renamed-but-
    // equivalent candidate of another question translates positionally.
    answer_cache_->Put(
        canon.key, kg,
        std::make_shared<const sparql::ResultSet>(
            rs->is_ask() || canon.projection_canonical.empty()
                ? *rs
                : rs->WithColumns(canon.projection_canonical)));
  }
  return rs;
}

RuntimeCounters KgqanEngine::Counters() const {
  RuntimeCounters counters;
  if (cache_ != nullptr) {
    LinkingCacheStats stats = cache_->stats();
    counters.linking_cache_hits = stats.hits;
    counters.linking_cache_misses = stats.misses;
  }
  if (answer_cache_ != nullptr) {
    AnswerCacheStats stats = answer_cache_->stats();
    counters.answer_cache_hits = stats.hits;
    counters.answer_cache_misses = stats.misses;
  }
  return counters;
}

std::vector<rdf::Term> KgqanEngine::RunSelectCandidate(
    const Bgp& bgp, size_t rank, const std::string& var,
    const nlp::AnswerTypePrediction& answer_type, sparql::Endpoint& endpoint,
    CandidateQueryStats* stats) const {
  obs::ScopedSpan span("execution.candidate");
  if (span.recording()) span.AddAttribute("rank", std::to_string(rank));
  stats->executed = true;
  // Stamps the stats slot and the span on every return path.
  auto finish = [&](std::vector<rdf::Term> answers) {
    stats->latency_ms = span.ElapsedMillis();
    stats->rows = answers.size();
    if (span.recording()) {
      span.AddAttribute("answers", std::to_string(answers.size()));
    }
    return answers;
  };
  // EXPLAIN ANALYZE: bind an operator-stats sink around the candidate's
  // evaluation when asked for explicitly or when this question's trace is
  // recording spans (sampled requests get operator detail for free).
  sparql::EvalProfile profile;
  std::optional<sparql::ScopedEvalProfile> analyze;
  if (config_.explain_analyze || span.recording()) analyze.emplace(&profile);
  bool cache_hit = false;
  auto rs = ExecuteCandidateQuery(BgpGenerator::ToSelectSparql(bgp, var),
                                  endpoint, &cache_hit);
  analyze.reset();
  stats->operators = std::move(profile.operators);
  if (span.recording() && answer_cache_ != nullptr) {
    span.AddAttribute("answer_cache", cache_hit ? "hit" : "miss");
  }
  if (!rs.ok() || rs->NumRows() == 0) return finish({});

  // Group rows into (answer, class list) candidates.  The grouping is a
  // pure function of the row *set* — candidates come out in N-Triples
  // order with sorted, deduplicated class lists — so a cached result from
  // an equivalent candidate (whose evaluator may emit the same rows in a
  // different order) yields byte-identical answers.
  auto a_col = rs->ColumnIndex(var);
  auto c_col = rs->ColumnIndex("c");
  if (!a_col.has_value()) return finish({});
  std::map<std::string, CandidateAnswer> grouped;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    const auto& a = rs->At(r, *a_col);
    if (!a.has_value()) continue;
    std::string key = rdf::ToNTriples(*a);
    auto [it, inserted] = grouped.emplace(key, CandidateAnswer{*a, {}});
    if (c_col.has_value()) {
      const auto& c = rs->At(r, *c_col);
      if (c.has_value() && c->IsIri()) {
        it->second.class_iris.push_back(c->value);
      }
    }
  }
  std::vector<CandidateAnswer> candidates;
  candidates.reserve(grouped.size());
  for (auto& [key, candidate] : grouped) {
    std::sort(candidate.class_iris.begin(), candidate.class_iris.end());
    candidate.class_iris.erase(std::unique(candidate.class_iris.begin(),
                                           candidate.class_iris.end()),
                               candidate.class_iris.end());
    candidates.push_back(std::move(candidate));
  }

  if (!config_.enable_filtration) {
    std::vector<rdf::Term> all;
    all.reserve(candidates.size());
    for (const CandidateAnswer& c : candidates) {
      all.push_back(c.term);
    }
    return finish(std::move(all));
  }
  std::vector<rdf::Term> filtered;
  {
    obs::ScopedSpan filtration_span("filtration");
    if (filtration_span.recording()) {
      filtration_span.AddAttribute("candidates",
                                   std::to_string(candidates.size()));
    }
    filtered = filtration_.Filter(candidates, answer_type);
  }
  return finish(std::move(filtered));
}

void KgqanEngine::ExecuteAskCandidates(const std::vector<Bgp>& bgps,
                                       sparql::Endpoint& endpoint,
                                       KgqanResult* result) const {
  // ASK semantics: the question holds if any of the ranked candidate
  // queries holds in the KG.
  auto run_ask = [this, &endpoint](const Bgp& bgp, size_t rank,
                                   CandidateQueryStats* stats) {
    obs::ScopedSpan span("execution.candidate");
    if (span.recording()) span.AddAttribute("rank", std::to_string(rank));
    stats->executed = true;
    sparql::EvalProfile profile;
    std::optional<sparql::ScopedEvalProfile> analyze;
    if (config_.explain_analyze || span.recording()) {
      analyze.emplace(&profile);
    }
    bool cache_hit = false;
    auto rs = ExecuteCandidateQuery(BgpGenerator::ToAskSparql(bgp), endpoint,
                                    &cache_hit);
    analyze.reset();
    stats->operators = std::move(profile.operators);
    if (span.recording() && answer_cache_ != nullptr) {
      span.AddAttribute("answer_cache", cache_hit ? "hit" : "miss");
    }
    bool held = rs.ok() && rs->is_ask() && rs->ask_value();
    stats->latency_ms = span.ElapsedMillis();
    stats->rows = held ? 1 : 0;
    return held;
  };
  bool value = false;
  if (pool_ == nullptr) {
    for (size_t i = 0; i < bgps.size(); ++i) {
      if (Expired(config_)) {
        result->deadline_exceeded = true;
        break;
      }
      ++result->queries_executed;
      if (run_ask(bgps[i], i, &result->candidates[i])) {
        value = true;
        break;
      }
    }
    result->response.boolean_answer = value;
    return;
  }
  // Parallel: execute in rank-ordered waves of pool-size queries; the
  // first true (in rank order) decides, exactly as the serial early exit.
  const size_t wave = pool_->size();
  for (size_t start = 0; start < bgps.size() && !value; start += wave) {
    if (Expired(config_)) {
      result->deadline_exceeded = true;
      break;
    }
    size_t end = std::min(start + wave, bgps.size());
    std::vector<std::future<bool>> futures;
    futures.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      ++result->queries_executed;
      const Bgp& bgp = bgps[i];
      // Each task writes its own preallocated stats slot: no race.
      CandidateQueryStats* stats = &result->candidates[i];
      futures.push_back(pool_->Submit([&run_ask, &bgp, i, stats]() {
        return run_ask(bgp, i, stats);
      }));
    }
    for (std::future<bool>& future : futures) {
      if (future.get()) value = true;  // Join the whole wave regardless.
    }
  }
  result->response.boolean_answer = value;
}

void KgqanEngine::ExecuteSelectCandidates(const std::vector<Bgp>& bgps,
                                          const std::string& var,
                                          sparql::Endpoint& endpoint,
                                          KgqanResult* result) const {
  // Recall-first union in rank order (Sec. 6): stop once enough top-ranked
  // queries were productive, and skip queries scoring far below the first
  // productive one.  The in-order combine below applies the identical
  // stopping rules for serial and parallel execution, so the answer set is
  // the same; parallel runs merely execute some queries speculatively.
  size_t productive_queries = 0;
  double base_score = -1.0;

  auto combine = [&](const Bgp& bgp,
                     std::vector<rdf::Term>&& answers) -> bool {
    // Returns false when the rank-order scan is done.
    if (base_score >= 0.0 && bgp.score < config_.score_gap * base_score) {
      return false;
    }
    if (answers.empty()) return true;  // Filtered away: try the next query.
    // Union into the running answer set.
    for (rdf::Term& term : answers) {
      bool dup = false;
      for (const rdf::Term& have : result->response.answers) {
        if (have == term) {
          dup = true;
          break;
        }
      }
      if (!dup) result->response.answers.push_back(std::move(term));
    }
    ++productive_queries;
    if (base_score < 0.0) base_score = bgp.score;
    return productive_queries < config_.max_productive_queries;
  };

  if (pool_ == nullptr) {
    for (size_t i = 0; i < bgps.size(); ++i) {
      const Bgp& bgp = bgps[i];
      if (Expired(config_)) {
        result->deadline_exceeded = true;
        break;
      }
      // Once an answer set exists, only near-equivalent queries (semantic
      // score within the gap) can extend it.
      if (base_score >= 0.0 && bgp.score < config_.score_gap * base_score) {
        break;
      }
      ++result->queries_executed;
      if (!combine(bgp, RunSelectCandidate(bgp, i, var, result->answer_type,
                                           endpoint,
                                           &result->candidates[i]))) {
        break;
      }
    }
    return;
  }

  const size_t wave = pool_->size();
  for (size_t start = 0; start < bgps.size(); start += wave) {
    if (Expired(config_)) {
      result->deadline_exceeded = true;
      return;
    }
    size_t end = std::min(start + wave, bgps.size());
    std::vector<std::future<std::vector<rdf::Term>>> futures;
    futures.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      ++result->queries_executed;
      const Bgp& bgp = bgps[i];
      futures.push_back(
          pool_->Submit([this, &bgp, i, &var, result, &endpoint]() {
            return RunSelectCandidate(bgp, i, var, result->answer_type,
                                      endpoint, &result->candidates[i]);
          }));
    }
    bool done = false;
    for (size_t i = start; i < end; ++i) {
      // Join every submitted future (they borrow endpoint/result state),
      // but stop combining once the rank-order scan is finished.
      std::vector<rdf::Term> answers = futures[i - start].get();
      if (!done && !combine(bgps[i], std::move(answers))) done = true;
    }
    if (done) return;
  }
}

KgqanResult KgqanEngine::AnswerFull(const std::string& question,
                                    sparql::Endpoint& endpoint,
                                    obs::Trace* trace) const {
  // Always bind a trace: the caller's full one, or a private counters-only
  // one.  Either way the endpoint and the linking cache attribute this
  // question's traffic to it (through every pool worker), which is what
  // makes the per-question counters below exact under concurrency.
  obs::Trace local_trace(obs::Trace::Mode::kCountersOnly);
  if (trace == nullptr) trace = &local_trace;
  obs::ScopedSpan root(trace, "question");
  root.AddAttribute("question", question);

  KgqanResult result;
  // Surface the span-recording trace's id so callers (serving front-end,
  // flight recorder, logs) can correlate this response with its trace.
  if (trace->spans_enabled()) result.trace_id = trace->id();

  // ---- Phase 1: question understanding (KG-independent). ----
  {
    obs::ScopedSpan span("qu");
    qu::TriplePatterns triples = generator_.Extract(question);
    result.answer_type = answer_type_classifier_.Predict(question);
    result.pgp = qu::Pgp::Build(triples);
    result.response.understood = !triples.empty();
    result.response.timings.qu_ms = span.ElapsedMillis();
  }
  root.AddAttribute("understood",
                    result.response.understood ? "true" : "false");
  if (!result.response.understood) return result;
  result.response.is_boolean = result.pgp.IsBoolean();

  // Deadline check between phases: an expired request stops before the
  // first endpoint exchange and returns the partial result.
  if (Expired(config_)) {
    result.deadline_exceeded = true;
    return result;
  }

  // ---- Phase 2: JIT linking against the target KG. ----
  {
    obs::ScopedSpan span("linking");
    uint64_t requests_before =
        trace->counter(obs::TraceCounter::kEndpointRequests);
    uint64_t round_trips_before =
        trace->counter(obs::TraceCounter::kEndpointRoundTrips);
    result.agp = linker_.Link(result.pgp, endpoint);
    result.linking_requests =
        trace->counter(obs::TraceCounter::kEndpointRequests) - requests_before;
    result.linking_round_trips =
        trace->counter(obs::TraceCounter::kEndpointRoundTrips) -
        round_trips_before;
    if (span.recording()) {
      span.AddAttribute("endpoint.requests",
                        std::to_string(result.linking_requests));
      span.AddAttribute("endpoint.round_trips",
                        std::to_string(result.linking_round_trips));
    }
    result.response.timings.linking_ms = span.ElapsedMillis();
  }
  if (Expired(config_)) {
    result.deadline_exceeded = true;
    return result;
  }

  // ---- Phase 3: execution and filtration. ----
  obs::ScopedSpan span("execution");
  std::vector<Bgp> bgps = bgp_generator_.Generate(result.agp);
  result.queries_generated = bgps.size();
  // Preallocate one stats slot per candidate so parallel execution waves
  // write distinct slots without synchronization.
  result.candidates.resize(bgps.size());
  for (size_t i = 0; i < bgps.size(); ++i) {
    result.candidates[i].rank = i;
    result.candidates[i].score = bgps[i].score;
  }
  auto finish_execution = [&]() {
    if (span.recording()) {
      span.AddAttribute("queries_generated",
                        std::to_string(result.queries_generated));
      span.AddAttribute("queries_executed",
                        std::to_string(result.queries_executed));
    }
    result.response.timings.execution_ms = span.ElapsedMillis();
  };

  if (result.response.is_boolean) {
    // Record the top candidate's SPARQL up front — before execution, which
    // a deadline may truncate — so slow-question forensics always see it.
    if (!bgps.empty()) {
      result.top_sparql = BgpGenerator::ToAskSparql(bgps.front());
    }
    ExecuteAskCandidates(bgps, endpoint, &result);
    finish_execution();
    return result;
  }

  auto main_unknown = result.pgp.MainUnknown();
  if (!main_unknown.has_value()) {
    finish_execution();
    return result;
  }
  // Built with += (not operator+) to dodge GCC 12's -Wrestrict false
  // positive on inlined small-string concatenation.
  std::string var = "u";
  var += std::to_string(result.pgp.nodes()[*main_unknown].var_id);
  if (!bgps.empty()) {
    result.top_sparql = BgpGenerator::ToSelectSparql(bgps.front(), var);
  }
  ExecuteSelectCandidates(bgps, var, endpoint, &result);
  finish_execution();
  return result;
}

}  // namespace kgqan::core
