#include "core/engine.h"

#include <algorithm>
#include <future>
#include <map>
#include <utility>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace kgqan::core {

namespace {

// Resolves the configured thread count: 0 = hardware concurrency, 1 =
// serial (no pool at all).
std::unique_ptr<util::ThreadPool> MakePool(size_t num_threads) {
  size_t n =
      num_threads == 0 ? util::ThreadPool::DefaultThreads() : num_threads;
  if (n <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(n);
}

std::unique_ptr<LinkingCache> MakeCache(size_t capacity) {
  if (capacity == 0) return nullptr;
  return std::make_unique<LinkingCache>(capacity);
}

}  // namespace

std::string Explain(const KgqanResult& result) {
  std::string out;
  out += "understood:  ";
  out += result.response.understood ? "yes" : "no";
  out += "\n";
  if (!result.response.understood) return out;
  out += "PGP:         " + result.pgp.DebugString() + "\n";
  out += "answer type: ";
  out += nlp::AnswerDataTypeName(result.answer_type.data_type);
  if (!result.answer_type.semantic_type.empty()) {
    out += " (" + result.answer_type.semantic_type + ")";
  }
  out += "\n";
  for (size_t n = 0; n < result.agp.node_vertices.size(); ++n) {
    const auto& vertices = result.agp.node_vertices[n];
    if (vertices.empty()) continue;
    out += "node \"" + result.pgp.nodes()[n].label + "\":\n";
    size_t shown = 0;
    for (const RelevantVertex& rv : vertices) {
      if (shown++ >= 3) break;
      out += "  <" + rv.iri + ">  " + util::FormatDouble(rv.score, 2) + "\n";
    }
  }
  for (size_t e = 0; e < result.agp.edge_predicates.size(); ++e) {
    const auto& preds = result.agp.edge_predicates[e];
    if (preds.empty()) continue;
    out += "edge \"" + result.pgp.edges()[e].label + "\":\n";
    size_t shown = 0;
    for (const RelevantPredicate& rp : preds) {
      if (shown++ >= 3) break;
      out += "  <" + rp.iri + ">  " + util::FormatDouble(rp.score, 2) + "\n";
    }
  }
  out += "queries:     " + std::to_string(result.queries_executed) + " of " +
         std::to_string(result.queries_generated) + " executed\n";
  out += "linking:     " + std::to_string(result.linking_requests) +
         " requests in " + std::to_string(result.linking_round_trips) +
         " round trips\n";
  if (result.response.is_boolean) {
    out += std::string("answer:      ") +
           (result.response.boolean_answer ? "true" : "false") + "\n";
  } else {
    for (const rdf::Term& a : result.response.answers) {
      out += "answer:      " + rdf::ToNTriples(a) + "\n";
    }
    if (result.response.answers.empty()) out += "answer:      (none)\n";
  }
  return out;
}

KgqanEngine::KgqanEngine(const KgqanConfig& config)
    : config_(config),
      generator_(config.qu),
      affinity_(std::make_unique<embed::SemanticAffinity>(
          config.affinity_mode)),
      pool_(MakePool(config.num_threads)),
      cache_(MakeCache(config.linking_cache_capacity)),
      linker_(&config_, affinity_.get(), pool_.get(), cache_.get()),
      bgp_generator_(&config_),
      filtration_(&config_, affinity_.get()) {}

RuntimeCounters KgqanEngine::Counters() const {
  RuntimeCounters counters;
  if (cache_ != nullptr) {
    LinkingCacheStats stats = cache_->stats();
    counters.linking_cache_hits = stats.hits;
    counters.linking_cache_misses = stats.misses;
  }
  return counters;
}

std::vector<rdf::Term> KgqanEngine::RunSelectCandidate(
    const Bgp& bgp, const std::string& var,
    const nlp::AnswerTypePrediction& answer_type,
    sparql::Endpoint& endpoint) const {
  auto rs = endpoint.Query(BgpGenerator::ToSelectSparql(bgp, var));
  if (!rs.ok() || rs->NumRows() == 0) return {};

  // Group rows into (answer, class list) candidates.
  auto a_col = rs->ColumnIndex(var);
  auto c_col = rs->ColumnIndex("c");
  if (!a_col.has_value()) return {};
  std::map<std::string, CandidateAnswer> grouped;
  std::vector<std::string> order;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    const auto& a = rs->At(r, *a_col);
    if (!a.has_value()) continue;
    std::string key = rdf::ToNTriples(*a);
    auto [it, inserted] = grouped.emplace(key, CandidateAnswer{*a, {}});
    if (inserted) order.push_back(key);
    if (c_col.has_value()) {
      const auto& c = rs->At(r, *c_col);
      if (c.has_value() && c->IsIri()) {
        it->second.class_iris.push_back(c->value);
      }
    }
  }
  std::vector<CandidateAnswer> candidates;
  candidates.reserve(order.size());
  for (const std::string& key : order) {
    candidates.push_back(grouped.at(key));
  }

  if (!config_.enable_filtration) {
    std::vector<rdf::Term> all;
    all.reserve(candidates.size());
    for (const CandidateAnswer& c : candidates) {
      all.push_back(c.term);
    }
    return all;
  }
  return filtration_.Filter(candidates, answer_type);
}

void KgqanEngine::ExecuteAskCandidates(const std::vector<Bgp>& bgps,
                                       sparql::Endpoint& endpoint,
                                       KgqanResult* result) const {
  // ASK semantics: the question holds if any of the ranked candidate
  // queries holds in the KG.
  bool value = false;
  if (pool_ == nullptr) {
    for (const Bgp& bgp : bgps) {
      ++result->queries_executed;
      auto rs = endpoint.Query(BgpGenerator::ToAskSparql(bgp));
      if (rs.ok() && rs->is_ask() && rs->ask_value()) {
        value = true;
        break;
      }
    }
    result->response.boolean_answer = value;
    return;
  }
  // Parallel: execute in rank-ordered waves of pool-size queries; the
  // first true (in rank order) decides, exactly as the serial early exit.
  const size_t wave = pool_->size();
  for (size_t start = 0; start < bgps.size() && !value; start += wave) {
    size_t end = std::min(start + wave, bgps.size());
    std::vector<std::future<bool>> futures;
    futures.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      ++result->queries_executed;
      const Bgp& bgp = bgps[i];
      futures.push_back(pool_->Submit([&bgp, &endpoint]() {
        auto rs = endpoint.Query(BgpGenerator::ToAskSparql(bgp));
        return rs.ok() && rs->is_ask() && rs->ask_value();
      }));
    }
    for (std::future<bool>& future : futures) {
      if (future.get()) value = true;  // Join the whole wave regardless.
    }
  }
  result->response.boolean_answer = value;
}

void KgqanEngine::ExecuteSelectCandidates(const std::vector<Bgp>& bgps,
                                          const std::string& var,
                                          sparql::Endpoint& endpoint,
                                          KgqanResult* result) const {
  // Recall-first union in rank order (Sec. 6): stop once enough top-ranked
  // queries were productive, and skip queries scoring far below the first
  // productive one.  The in-order combine below applies the identical
  // stopping rules for serial and parallel execution, so the answer set is
  // the same; parallel runs merely execute some queries speculatively.
  size_t productive_queries = 0;
  double base_score = -1.0;

  auto combine = [&](const Bgp& bgp,
                     std::vector<rdf::Term>&& answers) -> bool {
    // Returns false when the rank-order scan is done.
    if (base_score >= 0.0 && bgp.score < config_.score_gap * base_score) {
      return false;
    }
    if (answers.empty()) return true;  // Filtered away: try the next query.
    // Union into the running answer set.
    for (rdf::Term& term : answers) {
      bool dup = false;
      for (const rdf::Term& have : result->response.answers) {
        if (have == term) {
          dup = true;
          break;
        }
      }
      if (!dup) result->response.answers.push_back(std::move(term));
    }
    ++productive_queries;
    if (base_score < 0.0) base_score = bgp.score;
    return productive_queries < config_.max_productive_queries;
  };

  if (pool_ == nullptr) {
    for (const Bgp& bgp : bgps) {
      // Once an answer set exists, only near-equivalent queries (semantic
      // score within the gap) can extend it.
      if (base_score >= 0.0 && bgp.score < config_.score_gap * base_score) {
        break;
      }
      ++result->queries_executed;
      if (!combine(bgp, RunSelectCandidate(bgp, var, result->answer_type,
                                           endpoint))) {
        break;
      }
    }
    return;
  }

  const size_t wave = pool_->size();
  for (size_t start = 0; start < bgps.size(); start += wave) {
    size_t end = std::min(start + wave, bgps.size());
    std::vector<std::future<std::vector<rdf::Term>>> futures;
    futures.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      ++result->queries_executed;
      const Bgp& bgp = bgps[i];
      futures.push_back(pool_->Submit([this, &bgp, &var, result, &endpoint]() {
        return RunSelectCandidate(bgp, var, result->answer_type, endpoint);
      }));
    }
    bool done = false;
    for (size_t i = start; i < end; ++i) {
      // Join every submitted future (they borrow endpoint/result state),
      // but stop combining once the rank-order scan is finished.
      std::vector<rdf::Term> answers = futures[i - start].get();
      if (!done && !combine(bgps[i], std::move(answers))) done = true;
    }
    if (done) return;
  }
}

KgqanResult KgqanEngine::AnswerFull(const std::string& question,
                                    sparql::Endpoint& endpoint) const {
  KgqanResult result;
  util::Stopwatch watch;

  // ---- Phase 1: question understanding (KG-independent). ----
  qu::TriplePatterns triples = generator_.Extract(question);
  result.answer_type = answer_type_classifier_.Predict(question);
  result.pgp = qu::Pgp::Build(triples);
  result.response.timings.qu_ms = watch.ElapsedMillis();
  if (triples.empty()) {
    result.response.understood = false;
    return result;
  }
  result.response.understood = true;
  result.response.is_boolean = result.pgp.IsBoolean();

  // ---- Phase 2: JIT linking against the target KG. ----
  watch.Restart();
  size_t requests_before = endpoint.query_count();
  size_t round_trips_before = endpoint.round_trips();
  result.agp = linker_.Link(result.pgp, endpoint);
  result.linking_requests = endpoint.query_count() - requests_before;
  result.linking_round_trips = endpoint.round_trips() - round_trips_before;
  result.response.timings.linking_ms = watch.ElapsedMillis();

  // ---- Phase 3: execution and filtration. ----
  watch.Restart();
  std::vector<Bgp> bgps = bgp_generator_.Generate(result.agp);
  result.queries_generated = bgps.size();

  if (result.response.is_boolean) {
    ExecuteAskCandidates(bgps, endpoint, &result);
    result.response.timings.execution_ms = watch.ElapsedMillis();
    return result;
  }

  auto main_unknown = result.pgp.MainUnknown();
  if (!main_unknown.has_value()) {
    result.response.timings.execution_ms = watch.ElapsedMillis();
    return result;
  }
  // Built with += (not operator+) to dodge GCC 12's -Wrestrict false
  // positive on inlined small-string concatenation.
  std::string var = "u";
  var += std::to_string(result.pgp.nodes()[*main_unknown].var_id);
  ExecuteSelectCandidates(bgps, var, endpoint, &result);
  result.response.timings.execution_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace kgqan::core
