#include "core/engine.h"

#include <algorithm>
#include <map>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace kgqan::core {

std::string Explain(const KgqanResult& result) {
  std::string out;
  out += "understood:  ";
  out += result.response.understood ? "yes" : "no";
  out += "\n";
  if (!result.response.understood) return out;
  out += "PGP:         " + result.pgp.DebugString() + "\n";
  out += "answer type: ";
  out += nlp::AnswerDataTypeName(result.answer_type.data_type);
  if (!result.answer_type.semantic_type.empty()) {
    out += " (" + result.answer_type.semantic_type + ")";
  }
  out += "\n";
  for (size_t n = 0; n < result.agp.node_vertices.size(); ++n) {
    const auto& vertices = result.agp.node_vertices[n];
    if (vertices.empty()) continue;
    out += "node \"" + result.pgp.nodes()[n].label + "\":\n";
    size_t shown = 0;
    for (const RelevantVertex& rv : vertices) {
      if (shown++ >= 3) break;
      out += "  <" + rv.iri + ">  " + util::FormatDouble(rv.score, 2) + "\n";
    }
  }
  for (size_t e = 0; e < result.agp.edge_predicates.size(); ++e) {
    const auto& preds = result.agp.edge_predicates[e];
    if (preds.empty()) continue;
    out += "edge \"" + result.pgp.edges()[e].label + "\":\n";
    size_t shown = 0;
    for (const RelevantPredicate& rp : preds) {
      if (shown++ >= 3) break;
      out += "  <" + rp.iri + ">  " + util::FormatDouble(rp.score, 2) + "\n";
    }
  }
  out += "queries:     " + std::to_string(result.queries_executed) + " of " +
         std::to_string(result.queries_generated) + " executed\n";
  if (result.response.is_boolean) {
    out += std::string("answer:      ") +
           (result.response.boolean_answer ? "true" : "false") + "\n";
  } else {
    for (const rdf::Term& a : result.response.answers) {
      out += "answer:      " + rdf::ToNTriples(a) + "\n";
    }
    if (result.response.answers.empty()) out += "answer:      (none)\n";
  }
  return out;
}

KgqanEngine::KgqanEngine(const KgqanConfig& config)
    : config_(config),
      generator_(config.qu),
      affinity_(std::make_unique<embed::SemanticAffinity>(
          config.affinity_mode)),
      linker_(&config_, affinity_.get()),
      bgp_generator_(&config_),
      filtration_(&config_, affinity_.get()) {}

KgqanResult KgqanEngine::AnswerFull(const std::string& question,
                                    sparql::Endpoint& endpoint) const {
  KgqanResult result;
  util::Stopwatch watch;

  // ---- Phase 1: question understanding (KG-independent). ----
  qu::TriplePatterns triples = generator_.Extract(question);
  result.answer_type = answer_type_classifier_.Predict(question);
  result.pgp = qu::Pgp::Build(triples);
  result.response.timings.qu_ms = watch.ElapsedMillis();
  if (triples.empty()) {
    result.response.understood = false;
    return result;
  }
  result.response.understood = true;
  result.response.is_boolean = result.pgp.IsBoolean();

  // ---- Phase 2: JIT linking against the target KG. ----
  watch.Restart();
  result.agp = linker_.Link(result.pgp, endpoint);
  result.response.timings.linking_ms = watch.ElapsedMillis();

  // ---- Phase 3: execution and filtration. ----
  watch.Restart();
  std::vector<Bgp> bgps = bgp_generator_.Generate(result.agp);
  result.queries_generated = bgps.size();

  if (result.response.is_boolean) {
    // ASK semantics: the question holds if any of the ranked candidate
    // queries holds in the KG.
    bool value = false;
    for (const Bgp& bgp : bgps) {
      ++result.queries_executed;
      auto rs = endpoint.Query(BgpGenerator::ToAskSparql(bgp));
      if (rs.ok() && rs->is_ask() && rs->ask_value()) {
        value = true;
        break;
      }
    }
    result.response.boolean_answer = value;
    result.response.timings.execution_ms = watch.ElapsedMillis();
    return result;
  }

  auto main_unknown = result.pgp.MainUnknown();
  if (!main_unknown.has_value()) {
    result.response.timings.execution_ms = watch.ElapsedMillis();
    return result;
  }
  std::string var =
      "u" + std::to_string(result.pgp.nodes()[*main_unknown].var_id);

  size_t productive_queries = 0;
  double base_score = -1.0;
  for (const Bgp& bgp : bgps) {
    // Once an answer set exists, only near-equivalent queries (semantic
    // score within the gap) can extend it.
    if (base_score >= 0.0 && bgp.score < config_.score_gap * base_score) {
      break;
    }
    ++result.queries_executed;
    auto rs = endpoint.Query(BgpGenerator::ToSelectSparql(bgp, var));
    if (!rs.ok() || rs->NumRows() == 0) continue;

    // Group rows into (answer, class list) candidates.
    auto a_col = rs->ColumnIndex(var);
    auto c_col = rs->ColumnIndex("c");
    if (!a_col.has_value()) continue;
    std::map<std::string, CandidateAnswer> grouped;
    std::vector<std::string> order;
    for (size_t r = 0; r < rs->NumRows(); ++r) {
      const auto& a = rs->At(r, *a_col);
      if (!a.has_value()) continue;
      std::string key = rdf::ToNTriples(*a);
      auto [it, inserted] = grouped.emplace(key, CandidateAnswer{*a, {}});
      if (inserted) order.push_back(key);
      if (c_col.has_value()) {
        const auto& c = rs->At(r, *c_col);
        if (c.has_value() && c->IsIri()) {
          it->second.class_iris.push_back(c->value);
        }
      }
    }
    std::vector<CandidateAnswer> candidates;
    candidates.reserve(order.size());
    for (const std::string& key : order) {
      candidates.push_back(grouped.at(key));
    }

    std::vector<rdf::Term> answers =
        config_.enable_filtration
            ? filtration_.Filter(candidates, result.answer_type)
            : [&] {
                std::vector<rdf::Term> all;
                for (const CandidateAnswer& c : candidates) {
                  all.push_back(c.term);
                }
                return all;
              }();
    if (answers.empty()) continue;  // Filtered away: try the next query.
    // Union into the running answer set.
    for (rdf::Term& term : answers) {
      bool dup = false;
      for (const rdf::Term& have : result.response.answers) {
        if (have == term) {
          dup = true;
          break;
        }
      }
      if (!dup) result.response.answers.push_back(std::move(term));
    }
    ++productive_queries;
    if (base_score < 0.0) base_score = bgp.score;
    if (productive_queries >= config_.max_productive_queries) break;
  }
  result.response.timings.execution_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace kgqan::core
