// RDF term model: IRIs, literals (with datatype / language tag) and blank
// nodes, following the RDF 1.1 abstract syntax.

#ifndef KGQAN_RDF_TERM_H_
#define KGQAN_RDF_TERM_H_

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace kgqan::rdf {

enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

// A single RDF term.  For kIri, `value` is the IRI string; for kLiteral it
// is the lexical form (with `datatype` and optional `lang`); for kBlank it
// is the blank-node label.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string value;
  std::string datatype;  // Only meaningful for literals; IRI of the datatype.
  std::string lang;      // Only meaningful for language-tagged literals.

  bool IsIri() const { return kind == TermKind::kIri; }
  bool IsLiteral() const { return kind == TermKind::kLiteral; }
  bool IsBlank() const { return kind == TermKind::kBlank; }

  // True for plain/xsd:string literals (the "descriptions" of Sec. 5.1).
  bool IsStringLiteral() const;

  friend bool operator==(const Term&, const Term&) = default;
  friend std::strong_ordering operator<=>(const Term&, const Term&) = default;
};

// Factory helpers.
Term Iri(std::string iri);
Term Blank(std::string label);
// xsd:string literal.
Term StringLiteral(std::string lexical);
Term LangLiteral(std::string lexical, std::string lang);
Term TypedLiteral(std::string lexical, std::string datatype_iri);
Term IntLiteral(int64_t value);
Term DoubleLiteral(double value);
Term BoolLiteral(bool value);
// xsd:date literal from an ISO "YYYY-MM-DD" string.
Term DateLiteral(std::string iso_date);

// N-Triples-style rendering, e.g. `<http://x>` or `"abc"@en` or
// `"4"^^<http://www.w3.org/2001/XMLSchema#integer>`.
std::string ToNTriples(const Term& term);

std::ostream& operator<<(std::ostream& os, const Term& term);

// Common vocabulary IRIs used by the knowledge graphs and the engine.
namespace vocab {
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr std::string_view kFoafName = "http://xmlns.com/foaf/0.1/name";
inline constexpr std::string_view kDcTitle = "http://purl.org/dc/terms/title";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr std::string_view kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";
}  // namespace vocab

// Returns the "local name" of an IRI: the substring after the last '#' or
// '/'.  E.g. "http://dbpedia.org/ontology/nearestCity" -> "nearestCity".
std::string_view IriLocalName(std::string_view iri);

// True if the IRI's local name looks human-readable (contains letters and is
// not predominantly digits) — the isHumanReadable check of Algorithm 2.
bool IsHumanReadableIri(std::string_view iri);

}  // namespace kgqan::rdf

#endif  // KGQAN_RDF_TERM_H_
