// An RDF graph: a term dictionary plus a list of id-triples.
//
// Graph is the construction-time container; kgqan::store::TripleStore builds
// the query indices over a finished Graph.

#ifndef KGQAN_RDF_GRAPH_H_
#define KGQAN_RDF_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "rdf/term_dictionary.h"

namespace kgqan::rdf {

// A triple of interned term ids.
struct Triple {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple&, const Triple&) = default;
};

class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Adds a triple, interning the terms.  Duplicate triples are allowed here
  // (the store deduplicates while indexing).
  void Add(const Term& s, const Term& p, const Term& o);
  void Add(TermId s, TermId p, TermId o);

  // Shorthand: subject IRI, predicate IRI, object term.
  void AddIri(std::string_view s, std::string_view p, const Term& o);
  // Shorthand: all three are IRIs.
  void AddIris(std::string_view s, std::string_view p, std::string_view o);

  TermDictionary& dictionary() { return dict_; }
  const TermDictionary& dictionary() const { return dict_; }

  const std::vector<Triple>& triples() const { return triples_; }
  size_t size() const { return triples_.size(); }

 private:
  TermDictionary dict_;
  std::vector<Triple> triples_;
};

}  // namespace kgqan::rdf

#endif  // KGQAN_RDF_GRAPH_H_
