#include "rdf/ntriples.h"

#include <cctype>

#include "util/string_util.h"

namespace kgqan::rdf {

namespace {

using util::Status;
using util::StatusOr;

void SkipSpace(std::string_view line, size_t& pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
}

StatusOr<std::string> ParseQuoted(std::string_view line, size_t& pos) {
  // Pre-condition: line[pos] == '"'.
  ++pos;
  std::string out;
  while (pos < line.size()) {
    char c = line[pos];
    if (c == '"') {
      ++pos;
      return out;
    }
    if (c == '\\') {
      ++pos;
      if (pos >= line.size()) break;
      char esc = line[pos];
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        default:
          return Status::ParseError("bad escape in literal");
      }
      ++pos;
      continue;
    }
    out += c;
    ++pos;
  }
  return Status::ParseError("unterminated literal");
}

}  // namespace

StatusOr<Term> ParseNTriplesTerm(std::string_view line, size_t& pos) {
  SkipSpace(line, pos);
  if (pos >= line.size()) return Status::ParseError("expected term");
  char c = line[pos];
  if (c == '<') {
    size_t end = line.find('>', pos);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    Term t = Iri(std::string(line.substr(pos + 1, end - pos - 1)));
    pos = end + 1;
    return t;
  }
  if (c == '_') {
    if (pos + 1 >= line.size() || line[pos + 1] != ':') {
      return Status::ParseError("bad blank node");
    }
    size_t start = pos + 2;
    size_t end = start;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    Term t = Blank(std::string(line.substr(start, end - start)));
    pos = end;
    return t;
  }
  if (c == '"') {
    auto lex = ParseQuoted(line, pos);
    if (!lex.ok()) return lex.status();
    // Optional language tag or datatype.
    if (pos < line.size() && line[pos] == '@') {
      size_t start = pos + 1;
      size_t end = start;
      while (end < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[end])) ||
              line[end] == '-')) {
        ++end;
      }
      Term t = LangLiteral(std::move(lex).value(),
                           std::string(line.substr(start, end - start)));
      pos = end;
      return t;
    }
    if (pos + 1 < line.size() && line[pos] == '^' && line[pos + 1] == '^') {
      pos += 2;
      if (pos >= line.size() || line[pos] != '<') {
        return Status::ParseError("expected datatype IRI");
      }
      size_t end = line.find('>', pos);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      Term t = TypedLiteral(std::move(lex).value(),
                            std::string(line.substr(pos + 1, end - pos - 1)));
      pos = end + 1;
      return t;
    }
    return StringLiteral(std::move(lex).value());
  }
  return Status::ParseError("unexpected character in term");
}

StatusOr<Graph> ParseNTriples(std::string_view text) {
  Graph graph;
  size_t line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    size_t pos = 0;
    auto s = ParseNTriplesTerm(line, pos);
    if (!s.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                s.status().message());
    }
    auto p = ParseNTriplesTerm(line, pos);
    if (!p.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                p.status().message());
    }
    auto o = ParseNTriplesTerm(line, pos);
    if (!o.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                o.status().message());
    }
    SkipSpace(line, pos);
    if (pos >= line.size() || line[pos] != '.') {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected '.'");
    }
    if (!p->IsIri()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": predicate must be an IRI");
    }
    graph.Add(*s, *p, *o);
  }
  return graph;
}

std::string WriteNTriples(const Graph& graph) {
  std::string out;
  const TermDictionary& dict = graph.dictionary();
  for (const Triple& t : graph.triples()) {
    out += ToNTriples(dict.Get(t.s));
    out += ' ';
    out += ToNTriples(dict.Get(t.p));
    out += ' ';
    out += ToNTriples(dict.Get(t.o));
    out += " .\n";
  }
  return out;
}

}  // namespace kgqan::rdf
