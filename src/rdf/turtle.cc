#include "rdf/turtle.h"

#include <cctype>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace kgqan::rdf {

namespace {

using util::Status;
using util::StatusOr;

constexpr std::string_view kRdfTypeIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class TurtleParser {
 public:
  explicit TurtleParser(std::string_view text) : text_(text) {}

  StatusOr<Graph> Parse() {
    Graph graph;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      KGQAN_RETURN_IF_ERROR(ParseStatement(&graph));
    }
    return graph;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  Status Error(const std::string& msg) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError("turtle line " + std::to_string(line) + ": " +
                              msg);
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool ConsumeChar(char c) {
    SkipWhitespaceAndComments();
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  // Case-insensitive word match at the current position.
  bool ConsumeWord(std::string_view word) {
    SkipWhitespaceAndComments();
    if (pos_ + word.size() > text_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    char after = PeekAt(word.size());
    if (std::isalnum(static_cast<unsigned char>(after)) || after == '_') {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  // For the bare SPARQL-style keywords, require whitespace after the word
  // so that a subject like `prefix:foo` is not mistaken for a declaration.
  bool ConsumeKeywordWs(std::string_view word) {
    size_t saved = pos_;
    if (!ConsumeWord(word)) return false;
    if (!AtEnd() && !std::isspace(static_cast<unsigned char>(Peek()))) {
      pos_ = saved;
      return false;
    }
    return true;
  }

  Status ParseStatement(Graph* graph) {
    if (ConsumeWord("@prefix") || ConsumeKeywordWs("prefix")) {
      return ParsePrefix();
    }
    if (ConsumeWord("@base") || ConsumeKeywordWs("base")) {
      KGQAN_ASSIGN_OR_RETURN(Term iri, ParseIriRef());
      base_ = iri.value;
      ConsumeChar('.');
      return Status::Ok();
    }
    return ParseTriples(graph);
  }

  Status ParsePrefix() {
    SkipWhitespaceAndComments();
    // pfx:
    size_t start = pos_;
    while (!AtEnd() && Peek() != ':') ++pos_;
    if (AtEnd()) return Error("expected ':' in prefix declaration");
    std::string pfx(text_.substr(start, pos_ - start));
    ++pos_;  // ':'
    KGQAN_ASSIGN_OR_RETURN(Term iri, ParseIriRef());
    prefixes_[std::string(util::Trim(pfx))] = iri.value;
    ConsumeChar('.');  // SPARQL-style PREFIX has no dot; tolerate both.
    return Status::Ok();
  }

  StatusOr<Term> ParseIriRef() {
    SkipWhitespaceAndComments();
    if (Peek() != '<') return Error("expected '<'");
    size_t end = text_.find('>', pos_);
    if (end == std::string_view::npos) return Error("unterminated IRI");
    std::string iri(text_.substr(pos_ + 1, end - pos_ - 1));
    pos_ = end + 1;
    if (!base_.empty() && iri.find(':') == std::string::npos) {
      iri = base_ + iri;  // Relative IRI resolution (simple concatenation).
    }
    return Iri(std::move(iri));
  }

  StatusOr<Term> ParseTerm(bool allow_literal) {
    SkipWhitespaceAndComments();
    char c = Peek();
    if (c == '<') return ParseIriRef();
    if (c == '_') {
      if (PeekAt(1) != ':') return Error("expected ':' after '_'");
      pos_ += 2;
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        ++pos_;
      }
      return Blank(std::string(text_.substr(start, pos_ - start)));
    }
    if (c == '[') {
      ++pos_;
      SkipWhitespaceAndComments();
      if (Peek() != ']') {
        return Error("bracketed property lists are not supported");
      }
      ++pos_;
      return Blank("anon" + std::to_string(next_anon_++));
    }
    if (c == '(') {
      return Error("RDF collections '(...)' are not supported");
    }
    if (c == '"' || c == '\'') {
      if (!allow_literal) return Error("literal not allowed here");
      return ParseLiteral();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      if (!allow_literal) return Error("literal not allowed here");
      return ParseNumber();
    }
    if (ConsumeWord("true")) return BoolLiteral(true);
    if (ConsumeWord("false")) return BoolLiteral(false);
    return ParsePrefixedName();
  }

  StatusOr<Term> ParsePrefixedName() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.')) {
      ++pos_;
    }
    if (Peek() != ':') return Error("expected prefixed name");
    std::string pfx(text_.substr(start, pos_ - start));
    ++pos_;
    size_t lstart = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '/')) {
      ++pos_;
    }
    std::string local(text_.substr(lstart, pos_ - lstart));
    auto it = prefixes_.find(pfx);
    if (it == prefixes_.end()) {
      return Error("unknown prefix '" + pfx + "'");
    }
    return Iri(it->second + local);
  }

  StatusOr<Term> ParseLiteral() {
    char quote = Peek();
    bool long_string = PeekAt(1) == quote && PeekAt(2) == quote;
    std::string lexical;
    if (long_string) {
      pos_ += 3;
      while (!AtEnd()) {
        if (Peek() == quote && PeekAt(1) == quote && PeekAt(2) == quote) {
          pos_ += 3;
          break;
        }
        lexical += text_[pos_++];
      }
    } else {
      ++pos_;
      while (!AtEnd() && Peek() != quote) {
        char c = text_[pos_++];
        if (c == '\\' && !AtEnd()) {
          char esc = text_[pos_++];
          switch (esc) {
            case 'n':
              lexical += '\n';
              break;
            case 't':
              lexical += '\t';
              break;
            case 'r':
              lexical += '\r';
              break;
            default:
              lexical += esc;
          }
          continue;
        }
        if (c == '\n') return Error("newline in single-quoted literal");
        lexical += c;
      }
      if (AtEnd()) return Error("unterminated literal");
      ++pos_;  // Closing quote.
    }
    // Suffixes.
    if (Peek() == '@') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        ++pos_;
      }
      return LangLiteral(std::move(lexical),
                         std::string(text_.substr(start, pos_ - start)));
    }
    if (Peek() == '^' && PeekAt(1) == '^') {
      pos_ += 2;
      KGQAN_ASSIGN_OR_RETURN(Term dt, ParseTerm(/*allow_literal=*/false));
      if (!dt.IsIri()) return Error("datatype must be an IRI");
      return TypedLiteral(std::move(lexical), dt.value);
    }
    return StringLiteral(std::move(lexical));
  }

  StatusOr<Term> ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-' || Peek() == '+') ++pos_;
    bool decimal = false;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.')) {
      if (Peek() == '.') {
        // A '.' not followed by a digit terminates the number.
        if (!std::isdigit(static_cast<unsigned char>(PeekAt(1)))) break;
        decimal = true;
      }
      ++pos_;
    }
    std::string lex(text_.substr(start, pos_ - start));
    if (lex.empty() || lex == "-" || lex == "+") return Error("bad number");
    return TypedLiteral(std::move(lex),
                        std::string(decimal ? vocab::kXsdDouble
                                            : vocab::kXsdInteger));
  }

  Status ParseTriples(Graph* graph) {
    KGQAN_ASSIGN_OR_RETURN(Term subject, ParseTerm(/*allow_literal=*/false));
    while (true) {
      // Predicate: `a` or IRI/prefixed name.
      Term predicate;
      if (ConsumeWord("a")) {
        predicate = Iri(std::string(kRdfTypeIri));
      } else {
        KGQAN_ASSIGN_OR_RETURN(predicate, ParseTerm(false));
        if (!predicate.IsIri()) return Error("predicate must be an IRI");
      }
      // Object list.
      while (true) {
        KGQAN_ASSIGN_OR_RETURN(Term object, ParseTerm(true));
        graph->Add(subject, predicate, object);
        if (!ConsumeChar(',')) break;
      }
      if (ConsumeChar(';')) {
        SkipWhitespaceAndComments();
        if (Peek() == '.') break;  // Trailing semicolon.
        continue;
      }
      break;
    }
    if (!ConsumeChar('.')) return Error("expected '.'");
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
  std::string base_;
  int next_anon_ = 0;
};

// Returns `iri` compressed to a prefixed name if a prefix applies.
std::string CompressIri(const std::string& iri,
                        const std::map<std::string, std::string>& prefixes) {
  for (const auto& [pfx, ns] : prefixes) {
    if (util::StartsWith(iri, ns)) {
      std::string local = iri.substr(ns.size());
      // The local part must be a simple name for the prefixed form.
      bool simple = !local.empty();
      for (char c : local) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '-')) {
          simple = false;
          break;
        }
      }
      if (simple) return pfx + ":" + local;
    }
  }
  return "<" + iri + ">";
}

std::string RenderTerm(const Term& term,
                       const std::map<std::string, std::string>& prefixes) {
  if (term.IsIri()) {
    if (term.value == kRdfTypeIri) return "a";
    return CompressIri(term.value, prefixes);
  }
  return ToNTriples(term);
}

}  // namespace

StatusOr<Graph> ParseTurtle(std::string_view text) {
  TurtleParser parser(text);
  return parser.Parse();
}

std::string WriteTurtle(const Graph& graph,
                        const std::map<std::string, std::string>& prefixes) {
  std::string out;
  for (const auto& [pfx, ns] : prefixes) {
    out += "@prefix " + pfx + ": <" + ns + "> .\n";
  }
  if (!prefixes.empty()) out += "\n";

  // Group triples by subject (first-appearance order), then by predicate.
  const TermDictionary& dict = graph.dictionary();
  std::vector<TermId> subject_order;
  std::unordered_map<TermId, std::vector<Triple>> by_subject;
  for (const Triple& t : graph.triples()) {
    auto [it, inserted] = by_subject.try_emplace(t.s);
    if (inserted) subject_order.push_back(t.s);
    it->second.push_back(t);
  }
  for (TermId s : subject_order) {
    const std::vector<Triple>& triples = by_subject.at(s);
    out += RenderTerm(dict.Get(s), prefixes);
    // Group by predicate, preserving order of first appearance.
    std::vector<TermId> pred_order;
    std::unordered_map<TermId, std::vector<TermId>> objects;
    for (const Triple& t : triples) {
      auto [it, inserted] = objects.try_emplace(t.p);
      if (inserted) pred_order.push_back(t.p);
      it->second.push_back(t.o);
    }
    for (size_t pi = 0; pi < pred_order.size(); ++pi) {
      TermId p = pred_order[pi];
      out += pi == 0 ? " " : " ;\n    ";
      out += RenderTerm(dict.Get(p), prefixes);
      const std::vector<TermId>& objs = objects.at(p);
      for (size_t oi = 0; oi < objs.size(); ++oi) {
        out += oi == 0 ? " " : ", ";
        out += RenderTerm(dict.Get(objs[oi]), prefixes);
      }
    }
    out += " .\n";
  }
  return out;
}

}  // namespace kgqan::rdf
