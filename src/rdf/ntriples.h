// N-Triples serialization: line-oriented parser and writer for Graph.
//
// Supports the subset of N-Triples produced by ToNTriples(): IRIs, blank
// nodes, plain / language-tagged / datatyped literals, `\" \\ \n \r \t`
// escapes, `#` comment lines and blank lines.

#ifndef KGQAN_RDF_NTRIPLES_H_
#define KGQAN_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace kgqan::rdf {

// Parses N-Triples text into a Graph.
util::StatusOr<Graph> ParseNTriples(std::string_view text);

// Parses a single N-Triples term starting at `pos` in `line`; advances `pos`
// past the term.  Exposed for testing.
util::StatusOr<Term> ParseNTriplesTerm(std::string_view line, size_t& pos);

// Serializes `graph` to N-Triples text (one triple per line).
std::string WriteNTriples(const Graph& graph);

}  // namespace kgqan::rdf

#endif  // KGQAN_RDF_NTRIPLES_H_
