#include "rdf/term_dictionary.h"

namespace kgqan::rdf {

TermDictionary::TermDictionary() {
  terms_.emplace_back();  // Reserve slot 0 as the null term.
}

std::string TermDictionary::EncodeKey(const Term& term) {
  std::string key;
  key.reserve(term.value.size() + term.datatype.size() + term.lang.size() + 4);
  key.push_back(static_cast<char>(term.kind));
  key.append(term.value);
  key.push_back('\x1f');
  key.append(term.datatype);
  key.push_back('\x1f');
  key.append(term.lang);
  return key;
}

TermId TermDictionary::Intern(const Term& term) {
  std::string key = EncodeKey(term);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  ids_.emplace(std::move(key), id);
  return id;
}

TermId TermDictionary::InternIri(std::string_view iri) {
  return Intern(Iri(std::string(iri)));
}

std::optional<TermId> TermDictionary::Find(const Term& term) const {
  auto it = ids_.find(EncodeKey(term));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<TermId> TermDictionary::FindIri(std::string_view iri) const {
  return Find(Iri(std::string(iri)));
}

size_t TermDictionary::ApproxBytes() const {
  size_t bytes = terms_.capacity() * sizeof(Term);
  for (const Term& t : terms_) {
    bytes += t.value.size() + t.datatype.size() + t.lang.size();
  }
  // Hash-map nodes: key string + id + bucket overhead (rough but stable).
  for (const auto& [key, id] : ids_) {
    (void)id;
    bytes += key.size() + sizeof(TermId) + 32;
  }
  return bytes;
}

}  // namespace kgqan::rdf
