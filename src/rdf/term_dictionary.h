// Interning dictionary mapping RDF terms to dense 32-bit ids.
//
// All triples are stored as id triples; the dictionary is the single place
// where term strings live.  Id 0 is reserved as the null term.

#ifndef KGQAN_RDF_TERM_DICTIONARY_H_
#define KGQAN_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace kgqan::rdf {

using TermId = uint32_t;

// Reserved invalid id.
inline constexpr TermId kNullTermId = 0;

class TermDictionary {
 public:
  TermDictionary();

  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;

  // Returns the id of `term`, inserting it if not present.
  TermId Intern(const Term& term);

  // Convenience for the most common case.
  TermId InternIri(std::string_view iri);

  // Returns the id of `term` if present.
  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> FindIri(std::string_view iri) const;

  // Pre-condition: id was returned by Intern (and is not kNullTermId).
  const Term& Get(TermId id) const { return terms_[id]; }

  // Number of interned terms (excluding the reserved null slot).
  size_t size() const { return terms_.size() - 1; }

  // Approximate heap footprint in bytes (used by Table 2 index sizing).
  size_t ApproxBytes() const;

  // Ids run from 1 to size() inclusive.
  TermId MaxId() const { return static_cast<TermId>(terms_.size() - 1); }

 private:
  static std::string EncodeKey(const Term& term);

  std::vector<Term> terms_;                       // index = TermId
  std::unordered_map<std::string, TermId> ids_;   // EncodeKey(term) -> id
};

}  // namespace kgqan::rdf

#endif  // KGQAN_RDF_TERM_DICTIONARY_H_
