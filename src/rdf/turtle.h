// Turtle (Terse RDF Triple Language) serialization.
//
// Supported subset (the constructs that appear in published KG dumps):
//   @prefix / PREFIX declarations, @base,
//   prefixed names and <IRI> references,
//   the `a` keyword for rdf:type,
//   predicate lists (`;`) and object lists (`,`),
//   plain / language-tagged / typed literals, integers, decimals,
//   booleans, triple-quoted long strings,
//   labelled (`_:b`) and anonymous (`[]`) blank nodes, and `#` comments.
// Collections `( ... )` and property lists inside brackets are rejected
// with a clear error.

#ifndef KGQAN_RDF_TURTLE_H_
#define KGQAN_RDF_TURTLE_H_

#include <map>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace kgqan::rdf {

// Parses Turtle text into a Graph.
util::StatusOr<Graph> ParseTurtle(std::string_view text);

// Serializes `graph` as Turtle, compressing with the given prefix map
// (prefix -> namespace IRI) and grouping triples by subject with `;`/`,`.
std::string WriteTurtle(const Graph& graph,
                        const std::map<std::string, std::string>& prefixes);

}  // namespace kgqan::rdf

#endif  // KGQAN_RDF_TURTLE_H_
