#include "rdf/front_coded_dictionary.h"

#include <algorithm>
#include <cassert>

#include "util/varint.h"

namespace kgqan::rdf {

namespace {
constexpr char kSep = '\x1f';
}  // namespace

std::string FrontCodedDictionary::EncodeTermKey(const Term& term) {
  std::string key;
  key.reserve(1 + term.value.size() + term.datatype.size() + term.lang.size() +
              2);
  key.push_back(static_cast<char>(term.kind));
  key += term.value;
  key.push_back(kSep);
  key += term.datatype;
  key.push_back(kSep);
  key += term.lang;
  return key;
}

Term FrontCodedDictionary::DecodeTermKey(std::string_view key) {
  Term term;
  term.kind = static_cast<TermKind>(key[0]);
  const size_t sep2 = key.rfind(kSep);
  const size_t sep1 = key.rfind(kSep, sep2 - 1);
  term.value = std::string(key.substr(1, sep1 - 1));
  term.datatype = std::string(key.substr(sep1 + 1, sep2 - sep1 - 1));
  term.lang = std::string(key.substr(sep2 + 1));
  return term;
}

FrontCodedDictionary::FrontCodedDictionary(const TermDictionary& dict) {
  std::vector<std::pair<std::string, TermId>> keyed;
  keyed.reserve(dict.size());
  for (TermId id = 1; id <= dict.MaxId(); ++id) {
    keyed.emplace_back(EncodeTermKey(dict.Get(id)), id);
  }
  Build(std::move(keyed));
}

void FrontCodedDictionary::Build(
    std::vector<std::pair<std::string, TermId>> keyed) {
  std::sort(keyed.begin(), keyed.end());

  const size_t n = keyed.size();
  std::vector<uint8_t> pool;
  std::vector<uint64_t> bucket_offsets;
  std::vector<uint32_t> sorted_to_id(n);
  std::vector<uint32_t> id_to_sorted(n + 1, 0);

  bucket_offsets.reserve(n / kBucket + 1);
  for (size_t i = 0; i < n; ++i) {
    const std::string& key = keyed[i].first;
    if (i % kBucket == 0) {
      bucket_offsets.push_back(pool.size());
      util::AppendVarint(&pool, key.size());
      pool.insert(pool.end(), key.begin(), key.end());
    } else {
      const std::string& prev = keyed[i - 1].first;
      const size_t max_lcp = std::min(prev.size(), key.size());
      size_t lcp = 0;
      while (lcp < max_lcp && prev[lcp] == key[lcp]) ++lcp;
      util::AppendVarint(&pool, lcp);
      util::AppendVarint(&pool, key.size() - lcp);
      pool.insert(pool.end(), key.begin() + lcp, key.end());
    }
    sorted_to_id[i] = keyed[i].second;
    id_to_sorted[keyed[i].second] = static_cast<uint32_t>(i);
  }

  base_terms_ = n;
  pool_.Own(std::move(pool));
  bucket_offsets_.Own(std::move(bucket_offsets));
  sorted_to_id_.Own(std::move(sorted_to_id));
  id_to_sorted_.Own(std::move(id_to_sorted));
  extra_terms_.clear();
  extra_ids_.clear();
}

std::string_view FrontCodedDictionary::BucketHeader(size_t b) const {
  size_t pos = bucket_offsets_[b];
  const uint64_t len = util::ReadVarint(pool_.data(), &pos);
  return std::string_view(reinterpret_cast<const char*>(pool_.data()) + pos,
                          len);
}

std::string FrontCodedDictionary::KeyAt(size_t target) const {
  const size_t b = target / kBucket;
  size_t pos = bucket_offsets_[b];
  const uint64_t header_len = util::ReadVarint(pool_.data(), &pos);
  std::string key(reinterpret_cast<const char*>(pool_.data()) + pos,
                  header_len);
  pos += header_len;
  for (size_t i = b * kBucket + 1; i <= target; ++i) {
    const uint64_t lcp = util::ReadVarint(pool_.data(), &pos);
    const uint64_t suffix_len = util::ReadVarint(pool_.data(), &pos);
    key.resize(lcp);
    key.append(reinterpret_cast<const char*>(pool_.data()) + pos, suffix_len);
    pos += suffix_len;
  }
  return key;
}

Term FrontCodedDictionary::Get(TermId id) const {
  if (id > base_terms_) return extra_terms_[id - base_terms_ - 1];
  return DecodeTermKey(KeyAt(id_to_sorted_[id]));
}

std::optional<TermId> FrontCodedDictionary::Find(const Term& term) const {
  const std::string key = EncodeTermKey(term);
  if (base_terms_ != 0) {
    // Last bucket whose header is <= key.
    size_t lo = 0;
    size_t hi = bucket_offsets_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (BucketHeader(mid) <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0) {
      const size_t b = lo - 1;
      size_t pos = bucket_offsets_[b];
      const uint64_t header_len = util::ReadVarint(pool_.data(), &pos);
      std::string cur(reinterpret_cast<const char*>(pool_.data()) + pos,
                      header_len);
      pos += header_len;
      const size_t first = b * kBucket;
      const size_t last = std::min(first + kBucket, base_terms_);
      for (size_t i = first; i < last; ++i) {
        if (i != first) {
          const uint64_t lcp = util::ReadVarint(pool_.data(), &pos);
          const uint64_t suffix_len = util::ReadVarint(pool_.data(), &pos);
          cur.resize(lcp);
          cur.append(reinterpret_cast<const char*>(pool_.data()) + pos,
                     suffix_len);
          pos += suffix_len;
        }
        if (cur == key) return sorted_to_id_[i];
        if (cur > key) break;
      }
    }
  }
  const auto it = extra_ids_.find(key);
  if (it != extra_ids_.end()) return it->second;
  return std::nullopt;
}

std::optional<TermId> FrontCodedDictionary::FindIri(
    std::string_view iri) const {
  Term term;
  term.kind = TermKind::kIri;
  term.value = std::string(iri);
  return Find(term);
}

TermId FrontCodedDictionary::Intern(const Term& term) {
  if (const auto existing = Find(term)) return *existing;
  extra_terms_.push_back(term);
  const TermId id = static_cast<TermId>(base_terms_ + extra_terms_.size());
  extra_ids_.emplace(EncodeTermKey(term), id);
  return id;
}

void FrontCodedDictionary::Fold() {
  if (extra_terms_.empty()) return;
  std::vector<std::pair<std::string, TermId>> keyed;
  keyed.reserve(size());
  for (size_t i = 0; i < base_terms_; ++i) {
    keyed.emplace_back(KeyAt(i), sorted_to_id_[i]);
  }
  for (size_t i = 0; i < extra_terms_.size(); ++i) {
    keyed.emplace_back(EncodeTermKey(extra_terms_[i]),
                       static_cast<TermId>(base_terms_ + 1 + i));
  }
  Build(std::move(keyed));
}

size_t FrontCodedDictionary::ApproxBytes() const {
  size_t bytes = pool_.PayloadBytes() + bucket_offsets_.PayloadBytes() +
                 sorted_to_id_.PayloadBytes() + id_to_sorted_.PayloadBytes();
  bytes += extra_terms_.capacity() * sizeof(Term);
  for (const Term& t : extra_terms_) {
    bytes += t.value.size() + t.datatype.size() + t.lang.size();
  }
  for (const auto& [key, id] : extra_ids_) {
    bytes += key.size() + sizeof(id) + 32;
  }
  return bytes;
}

void FrontCodedDictionary::AdoptBorrowed(
    const uint8_t* pool, size_t pool_len, const uint64_t* bucket_offsets,
    size_t num_buckets, const uint32_t* sorted_to_id,
    const uint32_t* id_to_sorted, size_t num_terms) {
  base_terms_ = num_terms;
  pool_.Borrow(pool, pool_len);
  bucket_offsets_.Borrow(bucket_offsets, num_buckets);
  sorted_to_id_.Borrow(sorted_to_id, num_terms);
  id_to_sorted_.Borrow(id_to_sorted, num_terms + 1);
  extra_terms_.clear();
  extra_ids_.clear();
}

}  // namespace kgqan::rdf
