#include "rdf/term.h"

#include <cctype>
#include <cstdio>

namespace kgqan::rdf {

bool Term::IsStringLiteral() const {
  return kind == TermKind::kLiteral &&
         (datatype.empty() || datatype == vocab::kXsdString);
}

Term Iri(std::string iri) {
  Term t;
  t.kind = TermKind::kIri;
  t.value = std::move(iri);
  return t;
}

Term Blank(std::string label) {
  Term t;
  t.kind = TermKind::kBlank;
  t.value = std::move(label);
  return t;
}

Term StringLiteral(std::string lexical) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.value = std::move(lexical);
  t.datatype = vocab::kXsdString;
  return t;
}

Term LangLiteral(std::string lexical, std::string lang) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.value = std::move(lexical);
  t.lang = std::move(lang);
  return t;
}

Term TypedLiteral(std::string lexical, std::string datatype_iri) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.value = std::move(lexical);
  t.datatype = std::move(datatype_iri);
  return t;
}

Term IntLiteral(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return TypedLiteral(buf, std::string(vocab::kXsdInteger));
}

Term DoubleLiteral(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return TypedLiteral(buf, std::string(vocab::kXsdDouble));
}

Term BoolLiteral(bool value) {
  return TypedLiteral(value ? "true" : "false",
                      std::string(vocab::kXsdBoolean));
}

Term DateLiteral(std::string iso_date) {
  return TypedLiteral(std::move(iso_date), std::string(vocab::kXsdDate));
}

namespace {

void AppendEscaped(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

std::string ToNTriples(const Term& term) {
  std::string out;
  switch (term.kind) {
    case TermKind::kIri:
      out = "<" + term.value + ">";
      break;
    case TermKind::kBlank:
      out = "_:" + term.value;
      break;
    case TermKind::kLiteral:
      out = "\"";
      AppendEscaped(term.value, out);
      out += "\"";
      if (!term.lang.empty()) {
        out += "@" + term.lang;
      } else if (!term.datatype.empty() &&
                 term.datatype != vocab::kXsdString) {
        out += "^^<" + term.datatype + ">";
      }
      break;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << ToNTriples(term);
}

std::string_view IriLocalName(std::string_view iri) {
  size_t pos = iri.find_last_of("#/");
  if (pos == std::string_view::npos || pos + 1 >= iri.size()) return iri;
  return iri.substr(pos + 1);
}

bool IsHumanReadableIri(std::string_view iri) {
  std::string_view local = IriLocalName(iri);
  if (local.empty()) return false;
  size_t letters = 0;
  size_t digits = 0;
  for (char c : local) {
    if (std::isalpha(static_cast<unsigned char>(c))) ++letters;
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  // Opaque identifiers such as "2279569217" or "P227" are digit-dominated.
  return letters > 0 && letters > digits;
}

}  // namespace kgqan::rdf
