// Front-coded sorted term dictionary: the compressed companion of
// TermDictionary for the compact store (RDF-TDAA-style).
//
// Terms are encoded to composite byte keys (kind + value + 0x1f + datatype
// + 0x1f + lang — the same shape TermDictionary hashes), sorted, and packed
// into buckets of kBucket keys: the bucket header stores its first key in
// full, every following key stores only (shared-prefix length, suffix).
// Because consecutive sorted IRIs share long prefixes, the pool is a
// fraction of the raw string bytes.
//
// TermIds are NOT reassigned: two permutation arrays (sorted position ->
// id, id -> sorted position) preserve the interning-order ids of the source
// TermDictionary exactly, so a compact store built from the same graph
// scans in the same key order as the v1 store — the byte-identity
// precondition of the differential battery.
//
// Lookups: term -> id is a binary search over bucket headers plus one
// bucket decode, O(log n + kBucket); id -> term decodes one bucket from its
// header, O(kBucket).  Get() therefore returns Term BY VALUE (there is no
// materialized Term to reference) — callers that bind `const Term&` to the
// result get the usual lifetime extension.
//
// Live interning (endpoint updates) appends to a small uncompressed extras
// overlay with ids above the front-coded base; Fold() re-sorts everything
// into one front-coded pool, again without changing any id.

#ifndef KGQAN_RDF_FRONT_CODED_DICTIONARY_H_
#define KGQAN_RDF_FRONT_CODED_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/term.h"
#include "rdf/term_dictionary.h"
#include "util/vec_view.h"

namespace kgqan::rdf {

class FrontCodedDictionary {
 public:
  static constexpr size_t kBucket = 16;

  FrontCodedDictionary() = default;

  // Builds the front-coded pool from `dict`, preserving every id: Get(i)
  // returns the same term as dict.Get(i) for i in [1, dict.MaxId()].
  explicit FrontCodedDictionary(const TermDictionary& dict);

  FrontCodedDictionary(const FrontCodedDictionary&) = delete;
  FrontCodedDictionary& operator=(const FrontCodedDictionary&) = delete;
  FrontCodedDictionary(FrontCodedDictionary&&) = default;
  FrontCodedDictionary& operator=(FrontCodedDictionary&&) = default;

  // Id of `term`, appending it to the extras overlay if absent (ids grow
  // in call order, mirroring TermDictionary::Intern).
  TermId Intern(const Term& term);

  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> FindIri(std::string_view iri) const;

  // Decodes the term with id `id` (pre-condition: 1 <= id <= MaxId()).
  Term Get(TermId id) const;

  size_t size() const { return base_terms_ + extra_terms_.size(); }
  TermId MaxId() const { return static_cast<TermId>(size()); }
  size_t extra_terms() const { return extra_terms_.size(); }

  // Re-front-codes the base + extras into one sorted pool; ids unchanged.
  void Fold();

  // Heap/pool bytes: front-coded pool + permutation arrays + extras.
  size_t ApproxBytes() const;

  // Raw sections for snapshot serialization (pre-condition: no extras —
  // the store folds before writing).
  const util::VecView<uint8_t>& pool() const { return pool_; }
  const util::VecView<uint64_t>& bucket_offsets() const {
    return bucket_offsets_;
  }
  const util::VecView<uint32_t>& sorted_to_id() const { return sorted_to_id_; }
  const util::VecView<uint32_t>& id_to_sorted() const { return id_to_sorted_; }

  // Points the dictionary at snapshot sections owned by the caller (the
  // store's mmap); `num_terms` is the base term count.
  void AdoptBorrowed(const uint8_t* pool, size_t pool_len,
                     const uint64_t* bucket_offsets, size_t num_buckets,
                     const uint32_t* sorted_to_id,
                     const uint32_t* id_to_sorted, size_t num_terms);

  // The composite sort/lookup key (same fields TermDictionary hashes).
  static std::string EncodeTermKey(const Term& term);
  // Inverse of EncodeTermKey.  Splits on the LAST two 0x1f bytes, so term
  // values containing 0x1f round-trip (datatype IRIs and language tags
  // never contain control bytes).
  static Term DecodeTermKey(std::string_view key);

 private:
  // Rebuilds the front-coded base from (key, id) pairs; `keyed` is
  // consumed.  Every id in [1, num_terms] must appear exactly once.
  void Build(std::vector<std::pair<std::string, TermId>> keyed);

  // Decoded key of sorted position `pos` (pre-condition: pos < base_terms_).
  std::string KeyAt(size_t pos) const;

  // Full first key of bucket `b`, as a view into the pool.
  std::string_view BucketHeader(size_t b) const;

  size_t base_terms_ = 0;
  util::VecView<uint8_t> pool_;
  util::VecView<uint64_t> bucket_offsets_;  // bucket -> pool byte offset
  util::VecView<uint32_t> sorted_to_id_;    // sorted position -> id
  util::VecView<uint32_t> id_to_sorted_;    // id -> sorted position; [0] unused

  std::vector<Term> extra_terms_;  // ids base_terms_ + 1 + i
  std::unordered_map<std::string, TermId> extra_ids_;
};

}  // namespace kgqan::rdf

#endif  // KGQAN_RDF_FRONT_CODED_DICTIONARY_H_
