#include "rdf/graph.h"

namespace kgqan::rdf {

void Graph::Add(const Term& s, const Term& p, const Term& o) {
  triples_.push_back(
      Triple{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)});
}

void Graph::Add(TermId s, TermId p, TermId o) {
  triples_.push_back(Triple{s, p, o});
}

void Graph::AddIri(std::string_view s, std::string_view p, const Term& o) {
  Add(Iri(std::string(s)), Iri(std::string(p)), o);
}

void Graph::AddIris(std::string_view s, std::string_view p,
                    std::string_view o) {
  Add(Iri(std::string(s)), Iri(std::string(p)), Iri(std::string(o)));
}

}  // namespace kgqan::rdf
