// Quickstart: load a small RDF graph from N-Triples, bring up an
// in-process SPARQL endpoint, and ask KGQAn the paper's running example
// q^E — with no pre-processing of any kind.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "rdf/ntriples.h"
#include "sparql/endpoint.h"

int main() {
  using namespace kgqan;

  // A miniature slice of DBpedia around the running example q^E (Fig. 1).
  const std::string ntriples = R"(
<http://dbpedia.org/resource/Danish_Straits> <http://www.w3.org/2000/01/rdf-schema#label> "Danish Straits" .
<http://dbpedia.org/resource/Danish_Straits> <http://dbpedia.org/property/outflow> <http://dbpedia.org/resource/Baltic_Sea> .
<http://dbpedia.org/resource/Baltic_Sea> <http://www.w3.org/2000/01/rdf-schema#label> "Baltic Sea" .
<http://dbpedia.org/resource/Baltic_Sea> <http://dbpedia.org/ontology/nearestCity> <http://dbpedia.org/resource/Kaliningrad> .
<http://dbpedia.org/resource/Baltic_Sea> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://dbpedia.org/ontology/Sea> .
<http://dbpedia.org/resource/North_Sea> <http://www.w3.org/2000/01/rdf-schema#label> "North Sea" .
<http://dbpedia.org/resource/North_Sea> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://dbpedia.org/ontology/Sea> .
<http://dbpedia.org/resource/Kaliningrad> <http://www.w3.org/2000/01/rdf-schema#label> "Kaliningrad" .
<http://dbpedia.org/resource/Yantar_Kaliningrad> <http://www.w3.org/2000/01/rdf-schema#label> "Yantar, Kaliningrad" .
<http://dbpedia.org/resource/Kaliningrad> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://dbpedia.org/ontology/City> .
)";

  auto graph = rdf::ParseNTriples(ntriples);
  if (!graph.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  sparql::LocalEndpoint endpoint("quickstart", std::move(graph).value());
  std::printf("Endpoint '%s' serving %zu triples.\n",
              endpoint.name().c_str(), endpoint.NumTriples());

  core::KgqanEngine engine;  // Universal: nothing is configured per KG.
  const std::string question =
      "Name the sea into which Danish Straits flows and has Kaliningrad as "
      "one of the city on the shore.";
  std::printf("\nQ: %s\n", question.c_str());

  core::KgqanResult result = engine.AnswerFull(question, endpoint);
  std::printf("understood:      %s\n",
              result.response.understood ? "yes" : "no");
  std::printf("PGP:             %s\n", result.pgp.DebugString().c_str());
  std::printf("answer type:     %s (%s)\n",
              nlp::AnswerDataTypeName(result.answer_type.data_type),
              result.answer_type.semantic_type.c_str());
  std::printf("queries tried:   %zu of %zu generated\n",
              result.queries_executed, result.queries_generated);
  for (const rdf::Term& answer : result.response.answers) {
    std::printf("A: %s\n", rdf::ToNTriples(answer).c_str());
  }
  if (result.response.answers.empty()) std::printf("A: (no answers)\n");
  return 0;
}
