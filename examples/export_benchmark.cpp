// export_benchmark: materializes one of the five benchmarks to disk so the
// datasets can be inspected or consumed by other tools — the KG as Turtle,
// the questions (with gold SPARQL, answers and links) as TSV.
//
//   $ ./examples/export_benchmark qald9 /tmp/qald9_export 0.2
//   /tmp/qald9_export/kg.ttl
//   /tmp/qald9_export/questions.tsv

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "benchgen/benchmark.h"
#include "benchgen/kg.h"
#include "rdf/turtle.h"
#include "util/string_util.h"

namespace {

using namespace kgqan;

std::map<std::string, std::string> PrefixesFor(benchgen::BenchmarkId id) {
  switch (id) {
    case benchgen::BenchmarkId::kQald9:
    case benchgen::BenchmarkId::kLcQuad:
      return {{"dbr", "http://dbpedia.org/resource/"},
              {"dbo", "http://dbpedia.org/ontology/"},
              {"dbp", "http://dbpedia.org/property/"},
              {"rdfs", "http://www.w3.org/2000/01/rdf-schema#"}};
    case benchgen::BenchmarkId::kYago:
      return {{"yago", "http://yago-knowledge.org/resource/"},
              {"schema", "http://schema.org/"},
              {"rdfs", "http://www.w3.org/2000/01/rdf-schema#"}};
    case benchgen::BenchmarkId::kDblp:
      return {{"dblp", "https://dblp.org/rdf/schema#"},
              {"dc", "http://purl.org/dc/terms/"},
              {"foaf", "http://xmlns.com/foaf/0.1/"}};
    case benchgen::BenchmarkId::kMag:
      return {{"magp", "http://ma-graph.org/property/"},
              {"foaf", "http://xmlns.com/foaf/0.1/"}};
  }
  return {};
}

std::string TsvEscape(const std::string& s) {
  std::string out = kgqan::util::ReplaceAll(s, "\t", " ");
  return kgqan::util::ReplaceAll(out, "\n", " ");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <qald9|lcquad|yago|dblp|mag> <out_dir> "
                 "[scale]\n",
                 argv[0]);
    return 2;
  }
  std::string which = argv[1];
  benchgen::BenchmarkId id;
  if (which == "qald9") {
    id = benchgen::BenchmarkId::kQald9;
  } else if (which == "lcquad") {
    id = benchgen::BenchmarkId::kLcQuad;
  } else if (which == "yago") {
    id = benchgen::BenchmarkId::kYago;
  } else if (which == "dblp") {
    id = benchgen::BenchmarkId::kDblp;
  } else if (which == "mag") {
    id = benchgen::BenchmarkId::kMag;
  } else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", which.c_str());
    return 2;
  }
  double scale = argc > 3 ? std::atof(argv[3]) : 1.0;

  benchgen::Benchmark bench = benchgen::BuildBenchmark(id, scale);
  std::filesystem::path dir(argv[2]);
  std::filesystem::create_directories(dir);

  // The endpoint owns the store; re-render its triples as a Graph (every
  // physical store shard holds a disjoint slice of the KG).
  {
    rdf::Graph graph;
    for (size_t i = 0; i < bench.endpoint->num_store_shards(); ++i) {
      bench.endpoint->MatchShard(
          i, rdf::kNullTermId, rdf::kNullTermId, rdf::kNullTermId,
          [&](const rdf::Triple& t) {
            graph.Add(bench.endpoint->StoreTerm(t.s),
                      bench.endpoint->StoreTerm(t.p),
                      bench.endpoint->StoreTerm(t.o));
            return true;
          });
    }
    std::ofstream out(dir / "kg.ttl");
    out << rdf::WriteTurtle(graph, PrefixesFor(id));
  }
  {
    std::ofstream out(dir / "questions.tsv");
    out << "question\tshape\tclass\tgold_sparql\tgold_answers\tgold_links\n";
    for (const benchgen::BenchQuestion& q : bench.questions) {
      out << TsvEscape(q.text) << "\t" << benchgen::QueryShapeName(q.shape)
          << "\t" << benchgen::LingClassName(q.ling) << "\t"
          << TsvEscape(q.gold_sparql) << "\t";
      if (q.is_boolean) {
        out << (q.gold_boolean ? "true" : "false");
      } else {
        for (size_t i = 0; i < q.gold_answers.size(); ++i) {
          if (i > 0) out << " | ";
          out << TsvEscape(rdf::ToNTriples(q.gold_answers[i]));
        }
      }
      out << "\t";
      for (size_t i = 0; i < q.gold_links.size(); ++i) {
        if (i > 0) out << " | ";
        out << (q.gold_links[i].is_relation ? "rel:" : "ent:")
            << TsvEscape(q.gold_links[i].phrase) << "="
            << q.gold_links[i].iri;
      }
      out << "\n";
    }
  }
  std::printf("exported %s (%zu triples, %zu questions) to %s\n",
              bench.name.c_str(), bench.endpoint->NumTriples(),
              bench.questions.size(), dir.string().c_str());
  return 0;
}
