// kgqan_cli: command-line question answering over any N-Triples or
// Turtle (.ttl) file.
//
//   $ ./examples/kgqan_cli my_graph.nt
//   > Who is the spouse of Barack Obama?
//   <http://dbpedia.org/resource/Michelle_Obama>
//
// Without an argument it serves a bundled demo KG.  Multi-intention
// questions ("When and where was X born?") are decomposed automatically;
// prefixing a question with "explain " prints the full pipeline trace
// (PGP, links, candidate queries).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "benchgen/kg.h"
#include "core/engine.h"
#include "core/multi_intention.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "sparql/endpoint.h"

namespace {

kgqan::util::StatusOr<kgqan::rdf::Graph> LoadGraph(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return kgqan::util::Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string p(path);
  if (p.size() > 4 && p.substr(p.size() - 4) == ".ttl") {
    return kgqan::rdf::ParseTurtle(text.str());
  }
  return kgqan::rdf::ParseNTriples(text.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgqan;

  std::unique_ptr<sparql::Endpoint> endpoint;
  if (argc > 1) {
    auto graph = LoadGraph(argv[1]);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    endpoint = std::make_unique<sparql::Endpoint>(argv[1],
                                                  std::move(graph).value());
  } else {
    benchgen::BuiltKg kg =
        benchgen::BuildGeneralKg(benchgen::KgFlavor::kDbpedia, 0.3, 99);
    std::printf("(no KG file given; serving a bundled demo KG)\n");
    endpoint = std::make_unique<sparql::Endpoint>("demo",
                                                  std::move(kg.graph));
  }
  std::printf("KG ready: %zu triples.  Ask a question per line; Ctrl-D to "
              "exit.\n",
              endpoint->NumTriples());

  core::KgqanEngine engine;
  core::MultiIntentionAnswerer multi(&engine);

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty()) {
      if (core::MultiIntentionAnswerer::IsMultiIntention(line)) {
        for (const core::IntentionAnswer& ia :
             multi.Answer(line, *endpoint)) {
          std::printf("[%s] %s\n", ia.intention.c_str(),
                      ia.question.c_str());
          for (const rdf::Term& a : ia.response.answers) {
            std::printf("  %s\n", rdf::ToNTriples(a).c_str());
          }
          if (ia.response.answers.empty()) std::printf("  (no answers)\n");
        }
      } else if (line.rfind("explain ", 0) == 0) {
        core::KgqanResult full =
            engine.AnswerFull(line.substr(8), *endpoint);
        std::printf("%s", core::Explain(full).c_str());
      } else {
        core::QaResponse r = engine.Answer(line, *endpoint);
        if (!r.understood) {
          std::printf("(could not understand the question)\n");
        } else if (r.is_boolean) {
          std::printf("%s\n", r.boolean_answer ? "true" : "false");
        } else if (r.answers.empty()) {
          std::printf("(no answers)\n");
        } else {
          for (const rdf::Term& a : r.answers) {
            std::printf("%s\n", rdf::ToNTriples(a).c_str());
          }
        }
        std::printf("  [%.0fms: QU %.0f | link %.0f | exec %.0f]\n",
                    r.timings.TotalMs(), r.timings.qu_ms,
                    r.timings.linking_ms, r.timings.execution_ms);
      }
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
