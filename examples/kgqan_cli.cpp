// kgqan_cli: command-line question answering over any N-Triples or
// Turtle (.ttl) file.
//
//   $ ./examples/kgqan_cli my_graph.nt
//   > Who is the spouse of Barack Obama?
//   <http://dbpedia.org/resource/Michelle_Obama>
//
// Without a file argument it serves a bundled demo KG.  `--shards=N`
// partitions the KG across N in-process subject-hash shards (the
// config's endpoint_shards knob); answers are byte-identical either way.
// `--store=compact` serves the KG from the dictionary-compressed CSR
// store (store v2); `--snapshot-out=FILE` persists that store after
// loading so a later run with `--snapshot-in=FILE` cold-starts from the
// mmap'd snapshot in milliseconds instead of re-parsing the KG.
// Multi-intention questions ("When and where was X born?") are
// decomposed automatically; prefixing a question with "explain " prints
// the full pipeline trace (PGP, links, candidate queries).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "benchgen/kg.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/multi_intention.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "serve/sharded_endpoint.h"
#include "sparql/endpoint.h"

namespace {

kgqan::util::StatusOr<kgqan::rdf::Graph> LoadGraph(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return kgqan::util::Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string p(path);
  if (p.size() > 4 && p.substr(p.size() - 4) == ".ttl") {
    return kgqan::rdf::ParseTurtle(text.str());
  }
  return kgqan::rdf::ParseNTriples(text.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgqan;

  core::KgqanConfig config;
  const char* kg_path = nullptr;
  std::string snapshot_in, snapshot_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--shards=", 0) == 0) {
      config.endpoint_shards = std::stoul(arg.substr(9));
    } else if (arg.rfind("--store=", 0) == 0) {
      std::string fmt = arg.substr(8);
      if (fmt == "compact") {
        config.store_format = core::StoreFormat::kCompact;
      } else if (fmt != "v1") {
        std::fprintf(stderr, "unknown --store format '%s' (v1|compact)\n",
                     fmt.c_str());
        return 2;
      }
    } else if (arg.rfind("--snapshot-in=", 0) == 0) {
      snapshot_in = arg.substr(14);
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      snapshot_out = arg.substr(15);
    } else if (kg_path == nullptr) {
      kg_path = argv[i];
    }
  }
  // Snapshots only exist for the compact store.
  if (!snapshot_in.empty() || !snapshot_out.empty()) {
    config.store_format = core::StoreFormat::kCompact;
  }

  std::unique_ptr<sparql::Endpoint> endpoint;
  if (!snapshot_in.empty()) {
    // Cold start: mmap the compact snapshot, skipping parse + index build.
    auto loaded = sparql::CompactEndpoint::FromSnapshot(
        snapshot_in, snapshot_in);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("(mmap-loaded compact snapshot %s)\n", snapshot_in.c_str());
    endpoint = std::move(loaded).value();
  } else {
    std::string name;
    rdf::Graph graph;
    if (kg_path != nullptr) {
      auto loaded = LoadGraph(kg_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      name = kg_path;
      graph = std::move(loaded).value();
    } else {
      benchgen::BuiltKg kg =
          benchgen::BuildGeneralKg(benchgen::KgFlavor::kDbpedia, 0.3, 99);
      std::printf("(no KG file given; serving a bundled demo KG)\n");
      name = "demo";
      graph = std::move(kg.graph);
    }
    endpoint = serve::MakeEndpoint(std::move(name), std::move(graph),
                                   config.endpoint_shards, {},
                                   config.store_format);
  }
  if (config.endpoint_shards > 1 && snapshot_in.empty()) {
    std::printf("(endpoint partitioned across %zu subject-hash shards)\n",
                config.endpoint_shards);
  } else if (config.store_format == core::StoreFormat::kCompact) {
    std::printf("(serving from the compact dictionary-compressed store)\n");
  }
  if (!snapshot_out.empty()) {
    auto* compact = dynamic_cast<sparql::CompactEndpoint*>(endpoint.get());
    if (compact == nullptr) {
      std::fprintf(stderr,
                   "--snapshot-out requires the compact single-store "
                   "endpoint (drop --shards)\n");
      return 2;
    }
    util::Status st = compact->WriteSnapshot(snapshot_out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("(wrote compact snapshot %s)\n", snapshot_out.c_str());
  }
  std::printf("KG ready: %zu triples.  Ask a question per line; Ctrl-D to "
              "exit.\n",
              endpoint->NumTriples());

  core::KgqanEngine engine(config);
  core::MultiIntentionAnswerer multi(&engine);

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty()) {
      if (core::MultiIntentionAnswerer::IsMultiIntention(line)) {
        for (const core::IntentionAnswer& ia :
             multi.Answer(line, *endpoint)) {
          std::printf("[%s] %s\n", ia.intention.c_str(),
                      ia.question.c_str());
          for (const rdf::Term& a : ia.response.answers) {
            std::printf("  %s\n", rdf::ToNTriples(a).c_str());
          }
          if (ia.response.answers.empty()) std::printf("  (no answers)\n");
        }
      } else if (line.rfind("explain ", 0) == 0) {
        core::KgqanResult full =
            engine.AnswerFull(line.substr(8), *endpoint);
        std::printf("%s", core::Explain(full).c_str());
      } else {
        core::QaResponse r = engine.Answer(line, *endpoint);
        if (!r.understood) {
          std::printf("(could not understand the question)\n");
        } else if (r.is_boolean) {
          std::printf("%s\n", r.boolean_answer ? "true" : "false");
        } else if (r.answers.empty()) {
          std::printf("(no answers)\n");
        } else {
          for (const rdf::Term& a : r.answers) {
            std::printf("%s\n", rdf::ToNTriples(a).c_str());
          }
        }
        std::printf("  [%.0fms: QU %.0f | link %.0f | exec %.0f]\n",
                    r.timings.TotalMs(), r.timings.qu_ms,
                    r.timings.linking_ms, r.timings.execution_ms);
      }
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
