// SPARQL console: a tiny REPL over the in-process endpoint, demonstrating
// the substrate API directly (store + full-text index + SPARQL engine)
// without KGQAn on top.  Reads one query per line from stdin; a demo
// query runs first so the example is useful non-interactively:
//
//   $ echo 'SELECT ?v ?d WHERE { ?v ?p ?d . ?d <bif:contains> "sea" . } LIMIT 3' |
//       ./examples/sparql_console

#include <cstdio>
#include <iostream>
#include <string>

#include "benchgen/kg.h"
#include "sparql/endpoint.h"

int main() {
  using namespace kgqan;

  benchgen::BuiltKg kg =
      benchgen::BuildGeneralKg(benchgen::KgFlavor::kDbpedia, 0.2, 11);
  sparql::LocalEndpoint endpoint("console", std::move(kg.graph));
  std::printf("SPARQL console over %zu triples.  One query per line; "
              "Ctrl-D to exit.\n",
              endpoint.NumTriples());

  const std::string demo =
      "SELECT DISTINCT ?city ?mayor WHERE { "
      "?city <http://dbpedia.org/ontology/mayor> ?mayor . } LIMIT 3";
  std::printf("\ndemo> %s\n", demo.c_str());
  if (auto rs = endpoint.Query(demo); rs.ok()) {
    std::printf("%s", rs->ToTsv().c_str());
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    auto rs = endpoint.Query(line);
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    std::printf("%s(%zu rows)\n", rs->ToTsv().c_str(), rs->NumRows());
  }
  return 0;
}
