// Universality on opaque URIs: KGQAn versus a gAnswer-style baseline on a
// MAG-like knowledge graph whose entity URIs are numeric codes (e.g.
// makg:2279569217).  The baseline's URI-text index is useless here, while
// KGQAn's JIT linking works through the descriptions attached via
// foaf:name — the Sec. 7.2.3 result in miniature.
//
//   $ ./examples/cryptic_kg

#include <cstdio>

#include "baselines/ganswer_like.h"
#include "benchgen/kg.h"
#include "core/engine.h"
#include "sparql/endpoint.h"

int main() {
  using namespace kgqan;

  benchgen::BuiltKg kg =
      benchgen::BuildScholarlyKg(benchgen::KgFlavor::kMag, 0.05, 7);
  const benchgen::Fact fact = kg.facts.at("author").front();
  sparql::LocalEndpoint endpoint("mag-demo", std::move(kg.graph));
  std::printf("MAG-style endpoint: %zu triples; example entity URI: <%s>\n",
              endpoint.NumTriples(), fact.subject.iri.c_str());

  std::string question =
      "Who wrote the paper \"" + fact.subject.label + "\"?";
  std::printf("\nQ: %s\n", question.c_str());

  // gAnswer-style baseline: must pre-process, and its index is built from
  // URI text, which is numeric here.
  baselines::GAnswerLike ganswer;
  auto stats = ganswer.Preprocess(endpoint);
  std::printf("\n[gAnswer] pre-processing took %.2fs, index %.1f MB\n",
              stats.seconds, stats.index_bytes / 1e6);
  core::QaResponse baseline_resp = ganswer.Answer(question, endpoint);
  std::printf("[gAnswer] answers: %zu (understood: %s)\n",
              baseline_resp.answers.size(),
              baseline_resp.understood ? "yes" : "no");

  // KGQAn: on demand, no pre-processing.
  core::KgqanEngine engine;
  core::QaResponse resp = engine.Answer(question, endpoint);
  std::printf("\n[KGQAn] pre-processing: none\n");
  std::printf("[KGQAn] answers: %zu\n", resp.answers.size());
  for (const rdf::Term& a : resp.answers) {
    std::printf("[KGQAn] A: %s\n", rdf::ToNTriples(a).c_str());
  }
  std::printf("[KGQAn] expected gold: %s\n", fact.object.value.c_str());
  return 0;
}
