// Academic search: KGQAn answering scholarly questions against a
// DBLP-style knowledge graph it has never seen before — paper titles as
// long quoted phrases, key-style URIs, dc:title / foaf:name descriptions.
//
//   $ ./examples/academic_search

#include <cstdio>
#include <vector>

#include "benchgen/kg.h"
#include "core/engine.h"
#include "sparql/endpoint.h"

int main() {
  using namespace kgqan;

  // A synthetic DBLP-like KG (papers, authors, venues, institutions).
  benchgen::BuiltKg kg =
      benchgen::BuildScholarlyKg(benchgen::KgFlavor::kDblp, 1.0, 42);
  // Keep a few real facts around so the demo questions have known answers.
  const benchgen::Fact paper_fact = kg.facts.at("author").front();
  const benchgen::Fact affiliation_fact = kg.facts.at("affiliation").front();

  sparql::LocalEndpoint endpoint("dblp-demo", std::move(kg.graph));
  std::printf("DBLP-style endpoint: %zu triples.\n\n",
              endpoint.NumTriples());

  core::KgqanEngine engine;
  std::vector<std::string> questions = {
      "Who wrote the paper \"" + paper_fact.subject.label + "\"?",
      "When was the paper \"" + paper_fact.subject.label + "\" published?",
      "Which venue published the paper \"" + paper_fact.subject.label +
          "\"?",
      "Which institution is " + affiliation_fact.subject.label +
          " affiliated with?",
      "Which institution is the affiliation of the author of \"" +
          paper_fact.subject.label + "\"?",
  };
  for (const std::string& q : questions) {
    std::printf("Q: %s\n", q.c_str());
    core::QaResponse resp = engine.Answer(q, endpoint);
    if (resp.answers.empty()) {
      std::printf("A: (no answers)\n\n");
      continue;
    }
    for (const rdf::Term& a : resp.answers) {
      std::printf("A: %s\n", rdf::ToNTriples(a).c_str());
    }
    std::printf("   (QU %.1fms, linking %.1fms, exec %.1fms)\n\n",
                resp.timings.qu_ms, resp.timings.linking_ms,
                resp.timings.execution_ms);
  }
  return 0;
}
